"""Numpy implementations of the layer-level operations.

Spatial tensors are ``(channels, height, width)``; batched variants take
``(batch, channels, height, width)``.  Convolution is implemented through
``im2col`` so forward and backward both reduce to matrix products, which
is also how the synergy-neuron datapath consumes data after Method-1
layouting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def pad2d(image: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two trailing axes of a (…, H, W) array."""
    if pad == 0:
        return image
    width = [(0, 0)] * (image.ndim - 2) + [(pad, pad), (pad, pad)]
    return np.pad(image, width, mode="constant")


def im2col(image: np.ndarray, kernel: int, stride: int, pad: int = 0) -> np.ndarray:
    """Unfold ``(C, H, W)`` into columns ``(out_h*out_w, C*k*k)``.

    Each row is one receptive field in channel-major order, so a
    convolution is ``columns @ weights.reshape(Dout, -1).T``.
    """
    if image.ndim != 3:
        raise ShapeError(f"im2col expects (C, H, W), got shape {image.shape}")
    image = pad2d(image, pad)
    channels, height, width = image.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {kernel} stride {stride} does not fit {height}x{width}"
        )
    strides = image.strides
    windows = np.lib.stride_tricks.as_strided(
        image,
        shape=(channels, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1] * stride, strides[2] * stride,
                 strides[1], strides[2]),
        writeable=False,
    )
    # (out_h, out_w, C, k, k) -> (out_h*out_w, C*k*k)
    return windows.transpose(1, 2, 0, 3, 4).reshape(out_h * out_w, channels * kernel * kernel)


def im2col_indices(
    image_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    pad: int = 0,
) -> tuple[np.ndarray, int, int]:
    """Gather indices turning a padded image into im2col columns.

    Returns ``(indices, out_h, out_w)`` where ``indices`` has shape
    ``(out_h*out_w, C*k*k)`` and indexes into the *zero-padded* image
    flattened to ``C*(H+2p)*(W+2p)``, so a whole batch unfolds with one
    fancy index: ``padded.reshape(n, -1)[:, indices]``.  Row/column
    layout matches :func:`im2col` element for element.
    """
    channels, height, width = image_shape
    padded_h, padded_w = height + 2 * pad, width + 2 * pad
    flat = np.arange(channels * padded_h * padded_w, dtype=np.intp)
    columns = im2col(flat.reshape(channels, padded_h, padded_w),
                     kernel, stride, pad=0)
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    return columns, out_h, out_w


def im2col_batch(images: np.ndarray, indices: np.ndarray,
                 pad: int = 0) -> np.ndarray:
    """Unfold a batch ``(N, C, H, W)`` through precomputed gather indices.

    ``indices`` comes from :func:`im2col_indices` over the per-sample
    image shape; the result is ``(N, out_h*out_w, C*k*k)`` with each
    ``[n]`` slice equal to ``im2col(images[n], ...)``.
    """
    if images.ndim != 4:
        raise ShapeError(
            f"im2col_batch expects (N, C, H, W), got shape {images.shape}")
    padded = pad2d(images, pad)
    return padded.reshape(images.shape[0], -1)[:, indices]


def col2im(
    columns: np.ndarray,
    image_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    pad: int = 0,
) -> np.ndarray:
    """Scatter-add columns back into an image (im2col adjoint)."""
    channels, height, width = image_shape
    padded = np.zeros((channels, height + 2 * pad, width + 2 * pad))
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    cols = columns.reshape(out_h, out_w, channels, kernel, kernel)
    for row in range(out_h):
        for col in range(out_w):
            top, left = row * stride, col * stride
            padded[:, top:top + kernel, left:left + kernel] += cols[row, col]
    if pad:
        return padded[:, pad:-pad, pad:-pad]
    return padded


def conv2d(
    image: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """2-D convolution (cross-correlation, Caffe convention).

    ``image`` is ``(Cin, H, W)``, ``weights`` is ``(Dout, Cin/groups,
    k, k)``.  With ``groups > 1`` input and output channels are split
    into that many independent groups (AlexNet's two-GPU convolutions).
    Returns ``(Dout, out_h, out_w)``.
    """
    if weights.ndim != 4:
        raise ShapeError(f"conv weights must be (Dout, Cin, k, k), got {weights.shape}")
    dout, cin_per_group, kernel, kernel_w = weights.shape
    if kernel != kernel_w:
        raise ShapeError("only square kernels are supported")
    if groups < 1 or dout % groups or image.shape[0] % groups:
        raise ShapeError(
            f"groups={groups} does not divide Dout={dout} and "
            f"Cin={image.shape[0]}"
        )
    if image.shape[0] != cin_per_group * groups:
        raise ShapeError(
            f"input has {image.shape[0]} channels, weights expect "
            f"{cin_per_group * groups} ({groups} groups of {cin_per_group})"
        )
    if groups > 1:
        dout_per_group = dout // groups
        parts = []
        for g in range(groups):
            part = conv2d(
                image[g * cin_per_group:(g + 1) * cin_per_group],
                weights[g * dout_per_group:(g + 1) * dout_per_group],
                bias[g * dout_per_group:(g + 1) * dout_per_group]
                if bias is not None else None,
                stride=stride, pad=pad,
            )
            parts.append(part)
        return np.concatenate(parts, axis=0)
    columns = im2col(image, kernel, stride, pad)
    out = columns @ weights.reshape(dout, -1).T
    if bias is not None:
        out = out + bias
    out_h = (image.shape[1] + 2 * pad - kernel) // stride + 1
    out_w = (image.shape[2] + 2 * pad - kernel) // stride + 1
    return out.T.reshape(dout, out_h, out_w)


def _pool_windows(image: np.ndarray, kernel: int, stride: int,
                  pad: int = 0,
                  pad_value: float = 0.0) -> tuple[np.ndarray, int, int]:
    """All pooling windows with Caffe ceil semantics (edge-padded)."""
    if pad:
        image = np.pad(
            image, ((0, 0), (pad, pad), (pad, pad)),
            mode="constant", constant_values=pad_value,
        )
    channels, height, width = image.shape
    out_h = -(-(height - kernel) // stride) + 1
    out_w = -(-(width - kernel) // stride) + 1
    need_h = (out_h - 1) * stride + kernel
    need_w = (out_w - 1) * stride + kernel
    if need_h > height or need_w > width:
        image = np.pad(
            image,
            ((0, 0), (0, max(0, need_h - height)), (0, max(0, need_w - width))),
            mode="edge",
        )
    strides = image.strides
    windows = np.lib.stride_tricks.as_strided(
        image,
        shape=(channels, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1] * stride, strides[2] * stride,
                 strides[1], strides[2]),
        writeable=False,
    )
    return windows, out_h, out_w


def pool_windows_batch(
    images: np.ndarray,
    kernel: int,
    stride: int,
    pad: int = 0,
    pad_values: np.ndarray | float = 0.0,
) -> tuple[np.ndarray, int, int]:
    """Batched :func:`_pool_windows`: ``(N, C, H, W)`` in, windows out.

    Returns ``(windows, out_h, out_w)`` with ``windows`` shaped
    ``(N, C, out_h, out_w, k, k)``.  ``pad_values`` is the constant used
    for the explicit border padding — a scalar or one value per sample
    (max pooling pads with each sample's minimum so padding never wins).
    Ceil-mode overflow rows/columns are edge-replicated, exactly as the
    per-sample helper does.
    """
    if images.ndim != 4:
        raise ShapeError(
            f"pool_windows_batch expects (N, C, H, W), got {images.shape}")
    n, channels, height, width = images.shape
    if pad:
        padded = np.empty((n, channels, height + 2 * pad, width + 2 * pad),
                          dtype=images.dtype)
        padded[...] = np.reshape(pad_values, (-1, 1, 1, 1)) \
            if np.ndim(pad_values) else pad_values
        padded[:, :, pad:pad + height, pad:pad + width] = images
        images = padded
        height += 2 * pad
        width += 2 * pad
    out_h = -(-(height - kernel) // stride) + 1
    out_w = -(-(width - kernel) // stride) + 1
    need_h = (out_h - 1) * stride + kernel
    need_w = (out_w - 1) * stride + kernel
    if need_h > height or need_w > width:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (0, max(0, need_h - height)),
             (0, max(0, need_w - width))),
            mode="edge",
        )
    strides = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, channels, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2] * stride,
                 strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    return windows, out_h, out_w


def max_pool2d(image: np.ndarray, kernel: int, stride: int,
               pad: int = 0) -> np.ndarray:
    """Max pooling over ``(C, H, W)``; padding never wins the max."""
    pad_value = float(np.min(image)) if pad and image.size else 0.0
    windows, out_h, out_w = _pool_windows(image, kernel, stride, pad,
                                          pad_value)
    return windows.max(axis=(3, 4))


def avg_pool2d(image: np.ndarray, kernel: int, stride: int,
               pad: int = 0) -> np.ndarray:
    """Average pooling over ``(C, H, W)`` (Caffe: zero-padded, full-window
    denominator)."""
    windows, out_h, out_w = _pool_windows(image, kernel, stride, pad, 0.0)
    return windows.mean(axis=(3, 4))


def linear(x: np.ndarray, weights: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully-connected layer: ``weights @ x + bias``.

    ``weights`` is ``(out, in)`` and ``x`` is flattened first.
    """
    flat = np.ravel(x)
    if weights.shape[1] != flat.size:
        raise ShapeError(
            f"linear expects {weights.shape[1]} inputs, got {flat.size}"
        )
    out = weights @ flat
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability at large |x|.
    out = np.empty_like(np.asarray(x, dtype=np.float64))
    x = np.asarray(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def softmax(x: np.ndarray) -> np.ndarray:
    flat = np.ravel(np.asarray(x, dtype=np.float64))
    shifted = flat - flat.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def softmax_batch(x: np.ndarray) -> np.ndarray:
    """Per-sample softmax over a batch: each row of ``(N, ...)`` is
    flattened and normalised independently, matching :func:`softmax`
    applied sample by sample."""
    x = np.asarray(x, dtype=np.float64)
    flat = x.reshape(x.shape[0], -1)
    shifted = flat - flat.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def argmax_classifier_batch(x: np.ndarray, top_k: int = 1) -> np.ndarray:
    """Batched :func:`argmax_classifier`: ``(N, top_k)`` index rows."""
    flat = np.asarray(x).reshape(x.shape[0], -1)
    order = np.argsort(-flat, axis=1, kind="stable")
    if top_k < flat.shape[1]:
        order = order[:, :top_k]
    return order.astype(np.int64)


def lrn(x: np.ndarray, local_size: int = 5, alpha: float = 1e-4,
        beta: float = 0.75, k: float = 1.0) -> np.ndarray:
    """Local response normalization across channels (Krizhevsky form)."""
    if x.ndim != 3:
        raise ShapeError(f"LRN expects (C, H, W), got shape {x.shape}")
    channels = x.shape[0]
    squared = x.astype(np.float64) ** 2
    half = local_size // 2
    scale = np.full_like(squared, k)
    for c in range(channels):
        lo = max(0, c - half)
        hi = min(channels, c + half + 1)
        scale[c] += (alpha / local_size) * squared[lo:hi].sum(axis=0)
    return x / scale ** beta


def dropout_mask(shape: tuple[int, ...], ratio: float, rng: np.random.Generator) -> np.ndarray:
    """Bernoulli keep-mask scaled by 1/(1-ratio) (inverted dropout)."""
    keep = rng.random(shape) >= ratio
    return keep.astype(np.float64) / (1.0 - ratio)


def argmax_classifier(x: np.ndarray, top_k: int = 1) -> np.ndarray:
    """Indices of the ``top_k`` largest activations, best first.

    Mirrors the k-sorter classifier block in the component library.
    """
    flat = np.ravel(x)
    if top_k >= flat.size:
        order = np.argsort(-flat, kind="stable")
        return order.astype(np.int64)
    order = np.argsort(-flat, kind="stable")[:top_k]
    return order.astype(np.int64)
