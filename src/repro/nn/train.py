"""Minibatch SGD training for the benchmark networks.

The paper trains its models in Matlab/Caffe; this module is the
stand-in: a small but complete backprop engine for sequential networks
(convolution, pooling, inner-product, activations, softmax), enough to
train the ANN approximators, the MNIST digit net and the scaled-down
CNN variants used in the accuracy experiments.

Trained parameters are exported in the ``{layer: {"weight", "bias"}}``
form that :class:`~repro.nn.reference.ReferenceNetwork` and the
accelerator compiler consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F


class Layer:
    """Base class: forward caches what backward needs."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> dict[str, np.ndarray]:
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        return {}


class Dense(Layer):
    """Fully-connected layer over flattened input (single sample)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, name: str = "") -> None:
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.name = name
        self.weight = rng.uniform(-limit, limit, size=(out_features, in_features))
        self.bias = np.zeros(out_features)
        self._x: np.ndarray | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._in_shape: tuple[int, ...] = (in_features,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        flat = np.ravel(x)
        if flat.size != self.weight.shape[1]:
            raise ShapeError(
                f"dense layer expects {self.weight.shape[1]} inputs, got {flat.size}"
            )
        self._x = flat
        return self.weight @ flat + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None
        self.grad_weight += np.outer(grad, self._x)
        self.grad_bias += grad
        return (self.weight.T @ grad).reshape(self._in_shape)

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}


class Conv2D(Layer):
    """Convolution layer via im2col (single sample)."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int, rng: np.random.Generator, pad: int = 0,
                 name: str = "") -> None:
        fan_in = in_channels * kernel * kernel
        limit = np.sqrt(6.0 / (fan_in + out_channels))
        self.name = name
        self.weight = rng.uniform(
            -limit, limit, size=(out_channels, in_channels, kernel, kernel)
        )
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.pad = pad
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._columns: np.ndarray | None = None
        self._in_shape: tuple[int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        dout, cin, kernel, _ = self.weight.shape
        self._in_shape = x.shape
        columns = F.im2col(x, kernel, self.stride, self.pad)
        self._columns = columns
        out = columns @ self.weight.reshape(dout, -1).T + self.bias
        out_h = (x.shape[1] + 2 * self.pad - kernel) // self.stride + 1
        out_w = (x.shape[2] + 2 * self.pad - kernel) // self.stride + 1
        self._out_hw = (out_h, out_w)
        return out.T.reshape(dout, out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._columns is not None and self._in_shape is not None
        dout, cin, kernel, _ = self.weight.shape
        grad_mat = grad.reshape(dout, -1).T  # (positions, Dout)
        self.grad_weight += (grad_mat.T @ self._columns).reshape(self.weight.shape)
        self.grad_bias += grad_mat.sum(axis=0)
        grad_columns = grad_mat @ self.weight.reshape(dout, -1)
        return F.col2im(grad_columns, self._in_shape, kernel, self.stride, self.pad)

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}


class MaxPool2D(Layer):
    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._out = F.max_pool2d(x, self.kernel, self.stride)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None and self._out is not None
        x = self._x
        out_grad = np.zeros_like(x)
        channels, out_h, out_w = grad.shape
        for c in range(channels):
            for i in range(out_h):
                for j in range(out_w):
                    top, left = i * self.stride, j * self.stride
                    window = x[c, top:top + self.kernel, left:left + self.kernel]
                    if window.size == 0:
                        continue
                    idx = np.unravel_index(np.argmax(window), window.shape)
                    out_grad[c, top + idx[0], left + idx[1]] += grad[c, i, j]
        return out_grad


class AvgPool2D(Layer):
    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride
        self._in_shape: tuple[int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return F.avg_pool2d(x, self.kernel, self.stride)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._in_shape is not None
        channels, height, width = self._in_shape
        out = np.zeros(self._in_shape)
        share = 1.0 / (self.kernel * self.kernel)
        _, out_h, out_w = grad.shape
        for i in range(out_h):
            for j in range(out_w):
                top, left = i * self.stride, j * self.stride
                out[:, top:min(top + self.kernel, height),
                    left:min(left + self.kernel, width)] += (
                    grad[:, i, j][:, None, None] * share
                )
        return out


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Sigmoid(Layer):
    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = F.sigmoid(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad * self._out * (1.0 - self._out)


class Tanh(Layer):
    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad * (1.0 - self._out ** 2)


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape: tuple[int, ...] = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return np.ravel(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class SequentialNet:
    """A chain of layers trained one sample at a time."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def zero_grads(self) -> None:
        for layer in self.layers:
            for grad in layer.grads().values():
                grad.fill(0.0)

    def sgd_step(self, lr: float, batch: int = 1, weight_decay: float = 0.0) -> None:
        for layer in self.layers:
            params = layer.params()
            grads = layer.grads()
            for key, param in params.items():
                update = grads[key] / batch
                if weight_decay:
                    update = update + weight_decay * param
                param -= lr * update

    def named_weights(self) -> dict[str, dict[str, np.ndarray]]:
        """Export per-layer weights keyed by each layer's ``name``."""
        out: dict[str, dict[str, np.ndarray]] = {}
        for index, layer in enumerate(self.layers):
            params = layer.params()
            if not params:
                continue
            name = getattr(layer, "name", "") or f"layer{index}"
            out[name] = {key: value.copy() for key, value in params.items()}
        return out


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`MLPTrainer`."""

    learning_rate: float = 0.05
    epochs: int = 30
    batch_size: int = 8
    weight_decay: float = 0.0
    lr_decay: float = 1.0
    seed: int = 0
    loss: str = "mse"  # "mse" or "cross_entropy"


@dataclass
class TrainReport:
    """Loss trajectory and final loss of one training run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class MLPTrainer:
    """Trains a :class:`SequentialNet` on (input, target) pairs.

    For ``loss="cross_entropy"`` the network's raw outputs are passed
    through a softmax and targets are integer class labels; for
    ``loss="mse"`` targets are float vectors.
    """

    def __init__(self, net: SequentialNet, config: TrainConfig | None = None) -> None:
        self.net = net
        self.config = config or TrainConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def _loss_and_grad(self, output: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        if self.config.loss == "cross_entropy":
            probabilities = F.softmax(output)
            label = int(target)
            loss = -float(np.log(max(probabilities[label], 1e-12)))
            grad = probabilities.copy()
            grad[label] -= 1.0
            return loss, grad
        diff = np.ravel(output) - np.ravel(target)
        return float(0.5 * np.dot(diff, diff)), diff

    def train(self, inputs: np.ndarray, targets: np.ndarray) -> TrainReport:
        """Run SGD over the dataset; returns the per-epoch mean loss."""
        count = len(inputs)
        if count == 0:
            raise ShapeError("training set is empty")
        report = TrainReport()
        lr = self.config.learning_rate
        for _ in range(self.config.epochs):
            order = self._rng.permutation(count)
            epoch_loss = 0.0
            batch_fill = 0
            self.net.zero_grads()
            for sample_index in order:
                output = self.net.forward(np.asarray(inputs[sample_index], dtype=np.float64))
                loss, grad = self._loss_and_grad(output, targets[sample_index])
                epoch_loss += loss
                self.net.backward(grad)
                batch_fill += 1
                if batch_fill == self.config.batch_size:
                    self.net.sgd_step(lr, batch_fill, self.config.weight_decay)
                    self.net.zero_grads()
                    batch_fill = 0
            if batch_fill:
                self.net.sgd_step(lr, batch_fill, self.config.weight_decay)
                self.net.zero_grads()
            report.losses.append(epoch_loss / count)
            lr *= self.config.lr_decay
        return report

    def evaluate_classification(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy over a labelled set."""
        correct = 0
        for x, label in zip(inputs, labels):
            output = self.net.forward(np.asarray(x, dtype=np.float64))
            if int(np.argmax(output)) == int(label):
                correct += 1
        return correct / max(1, len(inputs))
