"""Hopfield network dynamics, including the TSP energy formulation.

The paper's Hopfield benchmark is a 2-layer recurrent net used as a TSP
solver.  This module provides both the generic binary Hopfield network
(pattern storage / recall) and the Hopfield-Tank mapping of the
travelling-salesman problem onto a recurrent energy landscape, which is
what the benchmark's weights encode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.nn.functional import sigmoid


class HopfieldNetwork:
    """Binary Hopfield network with Hebbian pattern storage."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ShapeError("Hopfield network needs a positive size")
        self.size = size
        self.weights = np.zeros((size, size))

    def store(self, patterns: np.ndarray) -> None:
        """Store ±1 patterns with the Hebbian outer-product rule."""
        patterns = np.asarray(patterns, dtype=np.float64)
        if patterns.ndim == 1:
            patterns = patterns[None, :]
        if patterns.shape[1] != self.size:
            raise ShapeError(
                f"patterns have width {patterns.shape[1]}, network is {self.size}"
            )
        for pattern in patterns:
            self.weights += np.outer(pattern, pattern)
        np.fill_diagonal(self.weights, 0.0)
        self.weights /= self.size

    def energy(self, state: np.ndarray) -> float:
        state = np.asarray(state, dtype=np.float64)
        return float(-0.5 * state @ self.weights @ state)

    def step(self, state: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """One asynchronous update sweep in random neuron order."""
        rng = rng or np.random.default_rng(0)
        state = np.asarray(state, dtype=np.float64).copy()
        for neuron in rng.permutation(self.size):
            drive = self.weights[neuron] @ state
            state[neuron] = 1.0 if drive >= 0 else -1.0
        return state

    def recall(self, probe: np.ndarray, max_sweeps: int = 50,
               rng: np.random.Generator | None = None) -> np.ndarray:
        """Iterate until a fixed point (or the sweep limit)."""
        rng = rng or np.random.default_rng(0)
        state = np.sign(np.asarray(probe, dtype=np.float64))
        state[state == 0] = 1.0
        for _ in range(max_sweeps):
            next_state = self.step(state, rng)
            if np.array_equal(next_state, state):
                break
            state = next_state
        return state


@dataclass
class TSPInstance:
    """A travelling-salesman instance on city coordinates."""

    coordinates: np.ndarray  # (cities, 2)

    @property
    def n_cities(self) -> int:
        return len(self.coordinates)

    def distances(self) -> np.ndarray:
        diff = self.coordinates[:, None, :] - self.coordinates[None, :, :]
        return np.sqrt((diff ** 2).sum(axis=-1))

    def tour_length(self, tour: list[int]) -> float:
        if sorted(tour) != list(range(self.n_cities)):
            raise ShapeError("tour must visit every city exactly once")
        dist = self.distances()
        return float(
            sum(dist[tour[i], tour[(i + 1) % len(tour)]] for i in range(len(tour)))
        )

    @staticmethod
    def random(n_cities: int, seed: int = 0) -> "TSPInstance":
        rng = np.random.default_rng(seed)
        return TSPInstance(rng.random((n_cities, 2)))


class HopfieldTSPSolver:
    """Hopfield-Tank continuous network solving TSP.

    Neurons form an ``n x n`` grid: neuron ``(city, position)`` is active
    when ``city`` is visited at ``position``.  The energy function
    penalises duplicate cities/positions and rewards short tours; its
    quadratic coefficients become the recurrent weight matrix that the
    benchmark loads into the accelerator.
    """

    def __init__(self, instance: TSPInstance, penalty_a: float = 500.0,
                 penalty_b: float = 500.0, penalty_c: float = 200.0,
                 distance_scale: float = 500.0, gain: float = 50.0) -> None:
        self.instance = instance
        self.n = instance.n_cities
        self.penalty_a = penalty_a
        self.penalty_b = penalty_b
        self.penalty_c = penalty_c
        self.distance_scale = distance_scale
        self.gain = gain
        self.weights, self.biases = self._build_weights()

    def _index(self, city: int, position: int) -> int:
        return city * self.n + position

    def _build_weights(self) -> tuple[np.ndarray, np.ndarray]:
        n = self.n
        size = n * n
        weights = np.zeros((size, size))
        dist = self.instance.distances()
        max_dist = dist.max() or 1.0
        dist = dist / max_dist
        for x in range(n):
            for i in range(n):
                a = self._index(x, i)
                for y in range(n):
                    for j in range(n):
                        b = self._index(y, j)
                        value = 0.0
                        if x == y and i != j:
                            value -= self.penalty_a
                        if i == j and x != y:
                            value -= self.penalty_b
                        value -= self.penalty_c
                        if j == (i + 1) % n or j == (i - 1) % n:
                            value -= self.distance_scale * dist[x, y]
                        weights[a, b] += value
        np.fill_diagonal(weights, 0.0)
        biases = np.full(size, self.penalty_c * n)
        return weights, biases

    def solve(self, steps: int = 2000, dt: float = 1e-5,
              seed: int = 0) -> tuple[list[int], np.ndarray]:
        """Integrate the network dynamics; returns (tour, final activity)."""
        rng = np.random.default_rng(seed)
        size = self.n * self.n
        potential = rng.normal(0.0, 0.01, size)
        for _ in range(steps):
            activity = sigmoid(self.gain * potential)
            gradient = self.weights @ activity + self.biases
            potential += dt * (gradient - potential)
        activity = sigmoid(self.gain * potential)
        return self.decode(activity), activity

    def decode(self, activity: np.ndarray) -> list[int]:
        """Greedy decode of the activity grid into a valid tour."""
        grid = np.asarray(activity, dtype=np.float64).reshape(self.n, self.n)
        tour: list[int] = []
        taken: set[int] = set()
        for position in range(self.n):
            ranked = np.argsort(-grid[:, position])
            for city in ranked:
                if int(city) not in taken:
                    tour.append(int(city))
                    taken.add(int(city))
                    break
        return tour

    def tour_quality(self, tour: list[int]) -> float:
        """Tour length relative to a nearest-neighbour heuristic (<=1 is good)."""
        greedy = nearest_neighbour_tour(self.instance)
        return self.instance.tour_length(tour) / self.instance.tour_length(greedy)


def nearest_neighbour_tour(instance: TSPInstance, start: int = 0) -> list[int]:
    """Classic nearest-neighbour construction — the orthodox comparator."""
    dist = instance.distances()
    unvisited = set(range(instance.n_cities))
    tour = [start]
    unvisited.discard(start)
    while unvisited:
        current = tour[-1]
        nearest = min(unvisited, key=lambda city: dist[current, city])
        tour.append(nearest)
        unvisited.discard(nearest)
    return tour
