"""Float-mode reference execution of a :class:`NetworkGraph`.

This is the paper's "software NN running on CPU": the golden model whose
outputs the generated accelerator is validated against, and the accuracy
baseline of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind, LayerSpec, PoolMethod
from repro.frontend.shapes import (
    TensorShape,
    conv_groups,
    infer_shapes,
    weight_shape,
)
from repro.nn import functional as F

LayerWeights = dict[str, np.ndarray]


def init_weights(
    graph: NetworkGraph,
    rng: np.random.Generator | None = None,
    scale: float = 0.1,
) -> dict[str, LayerWeights]:
    """Random (Gaussian) weights for every weighted layer in the graph."""
    rng = rng or np.random.default_rng(0)
    shapes = infer_shapes(graph)
    weights: dict[str, LayerWeights] = {}
    for spec in graph.weighted_layers():
        in_shape = shapes[spec.bottoms[0]] if spec.bottoms else TensorShape((1,))
        wshape = weight_shape(spec, in_shape)
        entry: LayerWeights = {
            "weight": rng.normal(0.0, scale, size=wshape),
        }
        if spec.bias:
            entry["bias"] = np.zeros(spec.num_output)
        if spec.kind is LayerKind.RECURRENT:
            entry["recurrent_weight"] = rng.normal(
                0.0, scale, size=(spec.num_output, spec.num_output)
            )
        weights[spec.name] = entry
    return weights


@dataclass
class ReferenceNetwork:
    """Executes a network graph in float64 with explicit recurrent state."""

    graph: NetworkGraph
    weights: dict[str, LayerWeights]
    dropout_rng: np.random.Generator | None = None
    #: When False (inference, the default) drop-out layers pass through,
    #: matching what the generated accelerator does at inference time.
    training: bool = False
    state: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._shapes = infer_shapes(self.graph)
        self._order = self.graph.topological_order()
        missing = [
            spec.name
            for spec in self.graph.weighted_layers()
            if spec.name not in self.weights
        ]
        if missing:
            raise ShapeError(f"missing weights for layers: {missing}")

    def reset_state(self) -> None:
        """Clear recurrent state between independent input sequences."""
        self.state.clear()

    def forward(self, inputs: np.ndarray | dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """One forward propagation; returns every blob's activation.

        ``inputs`` is either a single array (bound to the sole data layer)
        or a mapping from data-layer top blob names to arrays.
        """
        blobs: dict[str, np.ndarray] = {}
        data_layers = self.graph.inputs()
        if isinstance(inputs, np.ndarray):
            if len(data_layers) != 1:
                raise ShapeError(
                    "network has multiple inputs; pass a dict of blobs"
                )
            inputs = {data_layers[0].tops[0]: inputs}
        for blob_name, value in inputs.items():
            expected = self._shapes[blob_name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != expected.dims:
                if value.size == expected.size:
                    value = value.reshape(expected.dims)
                else:
                    raise ShapeError(
                        f"input blob '{blob_name}' has shape {value.shape}, "
                        f"expected {expected.dims}"
                    )
            blobs[blob_name] = value

        for spec in self._order:
            if spec.kind is LayerKind.DATA:
                if spec.tops[0] not in blobs:
                    raise ShapeError(f"no input bound to blob '{spec.tops[0]}'")
                continue
            result = self._run_layer(spec, [blobs[b] for b in spec.bottoms])
            for top in spec.tops:
                blobs[top] = result
        return blobs

    def output(self, inputs: np.ndarray | dict[str, np.ndarray]) -> np.ndarray:
        """Activation of the network's final output blob."""
        blobs = self.forward(inputs)
        outputs = self.graph.outputs()
        if not outputs:
            raise ShapeError("network has no output layer")
        return blobs[outputs[-1].tops[0]]

    # ------------------------------------------------------------------

    def _run_layer(self, spec: LayerSpec, inputs: list[np.ndarray]) -> np.ndarray:
        kind = spec.kind
        first = inputs[0] if inputs else None
        params = self.weights.get(spec.name, {})

        if kind.is_convolution:
            return F.conv2d(
                first, params["weight"], params.get("bias"),
                stride=spec.stride, pad=spec.pad,
                groups=conv_groups(spec, first.shape[0]),
            )
        if kind is LayerKind.POOLING:
            if spec.pool_method is PoolMethod.MAX:
                return F.max_pool2d(first, spec.kernel_size, spec.stride,
                                    spec.pad)
            return F.avg_pool2d(first, spec.kernel_size, spec.stride,
                                spec.pad)
        if kind is LayerKind.INNER_PRODUCT:
            return F.linear(first, params["weight"], params.get("bias"))
        if kind is LayerKind.RECURRENT:
            drive = F.linear(first, params["weight"], params.get("bias"))
            state = self.state.get(spec.name)
            if state is None:
                state = np.zeros(spec.num_output)
            drive = drive + params["recurrent_weight"] @ state
            self.state[spec.name] = drive
            return drive
        if kind is LayerKind.ASSOCIATIVE:
            return F.linear(first, params["weight"], params.get("bias"))
        if kind is LayerKind.RELU:
            return F.relu(first)
        if kind is LayerKind.SIGMOID:
            return F.sigmoid(first)
        if kind is LayerKind.TANH:
            return F.tanh(first)
        if kind is LayerKind.LRN:
            return F.lrn(first, spec.local_size, spec.alpha, spec.beta)
        if kind is LayerKind.DROPOUT:
            if self.training and self.dropout_rng is not None:
                mask = F.dropout_mask(first.shape, spec.dropout_ratio,
                                      self.dropout_rng)
                return first * mask
            return first
        if kind is LayerKind.SOFTMAX:
            return F.softmax(first)
        if kind is LayerKind.CLASSIFIER:
            return F.argmax_classifier(first, spec.top_k).astype(np.float64)
        if kind is LayerKind.CONCAT:
            if all(a.ndim == 3 for a in inputs):
                return np.concatenate(inputs, axis=0)
            return np.concatenate([np.ravel(a) for a in inputs])
        if kind is LayerKind.ELTWISE:
            total = inputs[0]
            for other in inputs[1:]:
                total = total + other
            return total
        raise ShapeError(f"reference execution has no rule for {kind}")
