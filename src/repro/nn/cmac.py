"""CMAC — Cerebellar Model Articulation Controller.

The paper's CMAC benchmark is a 2-layer associative network used for
robot-arm control.  A CMAC quantizes its input space into overlapping
tilings; each tiling contributes one active weight cell, and the output
is the sum of the active cells.  Training is the classic Albus delta
rule.  The associative layer maps naturally onto the component library's
connection box + accumulator blocks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class CMAC:
    """A multi-input, multi-output CMAC with hashed conceptual memory."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        n_tilings: int = 8,
        resolution: int = 16,
        input_low: float = 0.0,
        input_high: float = 1.0,
        table_size: int = 4096,
        seed: int = 0,
    ) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ShapeError("CMAC dimensions must be positive")
        if n_tilings <= 0 or resolution <= 1:
            raise ShapeError("CMAC needs n_tilings >= 1 and resolution >= 2")
        if input_high <= input_low:
            raise ShapeError("CMAC input range is empty")
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.n_tilings = n_tilings
        self.resolution = resolution
        self.input_low = input_low
        self.input_high = input_high
        self.table_size = table_size
        self.weights = np.zeros((table_size, output_dim))
        rng = np.random.default_rng(seed)
        # Fixed random offsets displace each tiling, and fixed random
        # coefficients hash grid coordinates into the conceptual memory.
        self._offsets = rng.random((n_tilings, input_dim))
        self._hash_coefficients = rng.integers(
            1, 2 ** 31 - 1, size=(n_tilings, input_dim + 1)
        )

    def active_cells(self, x: np.ndarray) -> np.ndarray:
        """Indices of the ``n_tilings`` active weight cells for input ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.input_dim,):
            raise ShapeError(
                f"CMAC input must have shape ({self.input_dim},), got {x.shape}"
            )
        span = self.input_high - self.input_low
        normalized = np.clip((x - self.input_low) / span, 0.0, 1.0 - 1e-12)
        cells = np.empty(self.n_tilings, dtype=np.int64)
        for tiling in range(self.n_tilings):
            grid = np.floor(
                normalized * (self.resolution - 1) + self._offsets[tiling]
            ).astype(np.int64)
            mixed = np.int64(self._hash_coefficients[tiling, -1])
            for dim in range(self.input_dim):
                mixed = np.int64(
                    (mixed * 31 + grid[dim] * self._hash_coefficients[tiling, dim])
                    % (2 ** 61 - 1)
                )
            cells[tiling] = int(mixed % self.table_size)
        return cells

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Sum of the active cells: the associative-layer forward pass."""
        return self.weights[self.active_cells(x)].sum(axis=0)

    def train_sample(self, x: np.ndarray, target: np.ndarray, lr: float = 0.2) -> float:
        """One Albus delta-rule update; returns the squared error before it."""
        target = np.asarray(target, dtype=np.float64)
        cells = self.active_cells(x)
        prediction = self.weights[cells].sum(axis=0)
        error = target - prediction
        self.weights[cells] += lr * error / self.n_tilings
        return float(np.dot(error, error))

    def train(self, inputs: np.ndarray, targets: np.ndarray, epochs: int = 20,
              lr: float = 0.2, seed: int = 0) -> list[float]:
        """Epoch-wise training; returns mean squared error per epoch."""
        if len(inputs) != len(targets):
            raise ShapeError("inputs and targets differ in length")
        rng = np.random.default_rng(seed)
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(inputs))
            total = 0.0
            for i in order:
                total += self.train_sample(inputs[i], targets[i], lr)
            history.append(total / len(inputs))
        return history

    def as_dense_weights(self) -> np.ndarray:
        """Dense ``(output_dim, table_size)`` view of the weight table.

        This is the matrix the accelerator's associative layer holds; the
        active-cell selection is realised by the connection box.
        """
        return self.weights.T.copy()
