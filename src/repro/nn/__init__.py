"""Functional neural-network substrate.

Float-mode reference execution of the network IR, used three ways:

* as the golden model the accelerator simulator is checked against,
* as the "software NN on CPU" baseline of the paper's experiments,
* as the training engine (:mod:`repro.nn.train`) that produces the
  weights burnt into the generated accelerators.

Special-model dynamics live in :mod:`repro.nn.hopfield` (TSP energy
minimisation) and :mod:`repro.nn.cmac` (table-based robot-arm control).
"""

from repro.nn.functional import (
    avg_pool2d,
    conv2d,
    im2col,
    linear,
    lrn,
    max_pool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.reference import ReferenceNetwork, init_weights
from repro.nn.train import MLPTrainer, TrainConfig

__all__ = [
    "conv2d",
    "im2col",
    "max_pool2d",
    "avg_pool2d",
    "linear",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "lrn",
    "ReferenceNetwork",
    "init_weights",
    "MLPTrainer",
    "TrainConfig",
]
