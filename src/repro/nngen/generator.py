"""The NN-Gen generator: script + constraint → accelerator design."""

from __future__ import annotations

from repro.components.library import ComponentLibrary, blocks_for_layer, \
    default_library
from repro.devices.device import ResourceBudget
from repro.errors import ResourceError, UnsupportedLayerError
from repro.fixedpoint.format import (
    DEFAULT_DATA_FORMAT,
    DEFAULT_WEIGHT_FORMAT,
    QFormat,
)
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind
from repro.frontend.shapes import infer_shapes, weight_shape
from repro.nngen.allocate import (
    NetworkNeeds,
    buffer_components,
    choose_datapath,
    control_components,
    functional_components,
)
from repro.nngen.design import AcceleratorDesign, DatapathConfig, FoldingPlan
from repro.nngen.folding import build_folding_plan


class NNGen:
    """The DeepBurning hardware generator (paper Fig. 3).

    Typical use::

        design = NNGen().generate(graph, budget)

    The returned design carries the configured component instances and
    the folding plan; pass it to
    :class:`~repro.compiler.compiler.DeepBurningCompiler` for the control
    program, and to :mod:`repro.rtl.emit` for Verilog.
    """

    def __init__(self, library: ComponentLibrary | None = None) -> None:
        self.library = library or default_library()

    def generate(
        self,
        graph: NetworkGraph,
        budget: ResourceBudget,
        data_format: QFormat = DEFAULT_DATA_FORMAT,
        weight_format: QFormat = DEFAULT_WEIGHT_FORMAT,
        max_lanes: int = 0,
        max_simd: int = 0,
        fold_capacity_scale: float = 1.0,
    ) -> AcceleratorDesign:
        """Generate an accelerator for ``graph`` within ``budget``.

        ``max_lanes`` / ``max_simd`` (0 = unbounded) cap the datapath
        search below what the budget would allow — the design-space
        explorer uses them to walk the narrow side of the frontier.
        ``fold_capacity_scale`` in (0, 1] shrinks the buffer capacity the
        folding planner may use, forcing deeper folding than the physical
        buffers require (a fold-depth knob for the explorer; the real
        buffers are unchanged, so the working sets still fit).

        Composition of the staged entry points the memoizing build
        pipeline (:mod:`repro.pipeline`) calls individually:
        :meth:`validate_knobs` → :meth:`datapath` → :meth:`apply_caps`
        → :meth:`realise_design`.
        """
        self.validate_knobs(max_lanes=max_lanes, max_simd=max_simd,
                            fold_capacity_scale=fold_capacity_scale)
        config = self.datapath(graph, budget, data_format=data_format,
                               weight_format=weight_format)
        config = self.apply_caps(config, max_lanes, max_simd)
        return self.realise_design(graph, budget, config,
                                   fold_capacity_scale)

    @staticmethod
    def validate_knobs(max_lanes: int = 0, max_simd: int = 0,
                       fold_capacity_scale: float = 1.0) -> None:
        """Reject out-of-range explorer knobs before any stage runs."""
        if not 0.0 < fold_capacity_scale <= 1.0:
            raise ResourceError(
                f"fold_capacity_scale {fold_capacity_scale} must be in (0, 1]"
            )
        if max_lanes < 0 or max_simd < 0:
            raise ResourceError(
                f"datapath caps must be non-negative, got "
                f"max_lanes={max_lanes} max_simd={max_simd}"
            )

    def datapath(self, graph: NetworkGraph, budget: ResourceBudget,
                 data_format: QFormat = DEFAULT_DATA_FORMAT,
                 weight_format: QFormat = DEFAULT_WEIGHT_FORMAT,
                 ) -> DatapathConfig:
        """Validate the graph and choose the budget-driven datapath.

        Pure function of (graph, budget, formats) — the pipeline
        memoizes it so a cap sweep pays the datapath search once.
        """
        graph.validate()
        self._check_layer_support(graph)
        feature_demand, weight_demand = self._demands(graph, data_format,
                                                      weight_format)
        return choose_datapath(
            graph, budget, data_format, weight_format,
            feature_demand_bits=feature_demand,
            weight_demand_bits=weight_demand,
        )

    def realise_design(self, graph: NetworkGraph, budget: ResourceBudget,
                       config: DatapathConfig,
                       fold_capacity_scale: float = 1.0,
                       ) -> AcceleratorDesign:
        """Realise a design for an (already capped) datapath choice.

        The datapath search estimates control cost from a nominal plan
        size; once the real folding plan exists, control may grow.  If
        the realised design overflows the budget, back the datapath off
        and re-fold until it fits.
        """
        shapes = infer_shapes(graph)
        feature_demand, weight_demand = self._demands(
            graph, config.data_format, config.weight_format)
        needs = NetworkNeeds.of(graph)
        while True:
            design = self._realise(graph, budget, config, needs, shapes,
                                   feature_demand, weight_demand,
                                   fold_capacity_scale)
            used = design.resource_report()
            if used.fits_in(budget.limit):
                return design
            if config.lanes > 1:
                config = DatapathConfig(
                    lanes=config.lanes // 2, simd=config.simd,
                    data_format=config.data_format,
                    weight_format=config.weight_format,
                    accumulator_width=config.accumulator_width,
                )
            elif config.simd > 1:
                config = DatapathConfig(
                    lanes=1, simd=config.simd // 2,
                    data_format=config.data_format,
                    weight_format=config.weight_format,
                    accumulator_width=config.accumulator_width,
                )
            else:
                raise ResourceError(
                    f"budget {budget.label} cannot fit the minimal design "
                    f"for '{graph.name}' (needs {used}, has {budget.limit})"
                )

    @staticmethod
    def apply_caps(config: DatapathConfig, max_lanes: int,
                   max_simd: int) -> DatapathConfig:
        lanes = min(config.lanes, max_lanes) if max_lanes else config.lanes
        simd = min(config.simd, max_simd) if max_simd else config.simd
        if lanes == config.lanes and simd == config.simd:
            return config
        return DatapathConfig(
            lanes=lanes, simd=simd,
            data_format=config.data_format,
            weight_format=config.weight_format,
            accumulator_width=config.accumulator_width,
        )

    def _realise(self, graph, budget, config, needs, shapes,
                 feature_demand, weight_demand,
                 fold_capacity_scale: float = 1.0) -> AcceleratorDesign:
        components = dict(functional_components(config, needs))
        buffers = buffer_components(config, budget, feature_demand,
                                    weight_demand)
        components.update(buffers)

        feature_buffer = buffers["feature_buffer"]
        weight_buffer = buffers["weight_buffer"]
        feature_capacity = (
            feature_buffer.depth_words * feature_buffer.word_bits
            // config.data_width
        )
        weight_capacity = (
            weight_buffer.depth_words * weight_buffer.word_bits
            // config.weight_width
        )
        feature_capacity = max(1, int(feature_capacity
                                      * fold_capacity_scale))
        weight_capacity = max(1, int(weight_capacity * fold_capacity_scale))
        folding = build_folding_plan(graph, config, feature_capacity,
                                     weight_capacity)

        # Control scales with the number of layer templates, not folds:
        # folds of one layer share a coordinator state parameterised by
        # the fold counter, exactly as AGU patterns are re-based per fold.
        layer_templates = len({phase.layer for phase in folding})
        components.update(control_components(
            config, n_phases=max(2, 2 * layer_templates),
            n_patterns=self._pattern_estimate(folding),
        ))

        return AcceleratorDesign(
            graph=graph,
            budget=budget,
            datapath=config,
            components=components,
            folding=folding,
            shapes=shapes,
        )

    def generate_from_text(self, script: str, budget: ResourceBudget,
                           **formats) -> AcceleratorDesign:
        """Deprecated: load the graph via :func:`repro.frontend.load`.

        Kept for one release; prefer
        ``NNGen().generate(repro.frontend.load(script), budget)``.
        """
        import warnings

        from repro.frontend import load

        warnings.warn(
            "NNGen.generate_from_text() is deprecated; use "
            "NNGen.generate(repro.frontend.load(script), budget)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.generate(load(script), budget, **formats)

    # ------------------------------------------------------------------

    def _check_layer_support(self, graph: NetworkGraph) -> None:
        for spec in graph.layers:
            blocks = blocks_for_layer(spec.kind)
            missing = [cls.MODULE for cls in blocks
                       if cls.MODULE not in self.library.blocks]
            if missing:
                raise UnsupportedLayerError(
                    f"layer '{spec.name}' ({spec.kind.value}) needs library "
                    f"blocks {missing} that are not registered"
                )

    @staticmethod
    def _demands(graph: NetworkGraph, data_format: QFormat,
                 weight_format: QFormat) -> tuple[int, int]:
        """Peak feature and weight working-set sizes, in bits."""
        shapes = infer_shapes(graph)
        feature_peak = 0
        weight_peak = 0
        for spec in graph.layers:
            live = 0
            for blob in (*spec.bottoms, *spec.tops):
                live += shapes[blob].size
            feature_peak = max(feature_peak, live)
            if spec.kind.has_weights and spec.bottoms:
                wshape = weight_shape(spec, shapes[spec.bottoms[0]])
                count = 1
                for dim in wshape:
                    count *= dim
                weight_peak = max(weight_peak, count)
        if feature_peak == 0:
            raise ResourceError("network moves no feature data")
        return (feature_peak * data_format.total_bits,
                max(1, weight_peak) * weight_format.total_bits)

    @staticmethod
    def _pattern_estimate(folding: FoldingPlan) -> int:
        """Distinct AGU patterns: one trio per layer kind/fold geometry.

        Folds of one layer share a pattern parameterised by start address,
        so the pattern count scales with layers, not folds.
        """
        distinct = {
            (phase.layer, phase.kind) for phase in folding
        }
        weighted = sum(
            3 if kind in (LayerKind.CONVOLUTION,
                          LayerKind.DEPTHWISE_CONVOLUTION,
                          LayerKind.INNER_PRODUCT,
                          LayerKind.RECURRENT, LayerKind.ASSOCIATIVE)
            else 2
            for _, kind in distinct
        )
        return max(1, weighted)
