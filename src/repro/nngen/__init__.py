"""NN-Gen: the DeepBurning hardware generator.

Maps a :class:`~repro.frontend.graph.NetworkGraph` onto a datapath built
from the component library, under a user resource budget.  The result is
an :class:`~repro.nngen.design.AcceleratorDesign`: configured component
instances plus a folding plan ("temporal and spatial folding", paper
§3.3) that the compiler turns into a runnable control program.
"""

from repro.nngen.design import AcceleratorDesign, DatapathConfig, FoldPhase, FoldingPlan
from repro.nngen.allocate import choose_datapath, estimate_design_cost
from repro.nngen.folding import build_folding_plan
from repro.nngen.generator import NNGen

__all__ = [
    "AcceleratorDesign",
    "DatapathConfig",
    "FoldPhase",
    "FoldingPlan",
    "NNGen",
    "choose_datapath",
    "estimate_design_cost",
    "build_folding_plan",
]
