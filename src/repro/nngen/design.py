"""Data model of a generated accelerator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.base import Component
from repro.devices.cost import ResourceCost
from repro.devices.device import ResourceBudget
from repro.errors import ResourceError
from repro.fixedpoint.format import QFormat
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind
from repro.frontend.shapes import TensorShape


@dataclass(frozen=True)
class DatapathConfig:
    """The generator-decided shape of the shared datapath."""

    lanes: int
    simd: int
    data_format: QFormat
    weight_format: QFormat
    accumulator_width: int = 32

    def __post_init__(self) -> None:
        if self.lanes < 1 or self.simd < 1:
            raise ResourceError(
                f"datapath needs at least one lane and one multiplier, "
                f"got lanes={self.lanes} simd={self.simd}"
            )

    @property
    def multipliers(self) -> int:
        return self.lanes * self.simd

    @property
    def data_width(self) -> int:
        return self.data_format.total_bits

    @property
    def weight_width(self) -> int:
        return self.weight_format.total_bits


@dataclass(frozen=True)
class FoldPhase:
    """One fold: a segment of one layer executed on the shared datapath.

    Spatial folding splits a layer along its outputs (``out_start`` /
    ``out_count``, in output *values*) and optionally along its inputs
    (``in_start`` / ``in_count``); temporal folding is the fact that every
    phase reuses the same blocks.
    """

    layer: str
    kind: LayerKind
    phase_index: int
    out_start: int
    out_count: int
    in_start: int = 0
    in_count: int = 0
    #: MAC (or compare, for pooling) operations in this fold.
    macs: int = 0
    #: Words moved for this fold, at datapath word granularity.
    input_words: int = 0
    weight_words: int = 0
    output_words: int = 0
    #: Dot-product depth per output value (0 for non-MAC layers).
    macs_per_output: int = 0
    #: True when this fold produces partial sums that a later fold of the
    #: same layer completes through the accumulator array.
    partial: bool = False
    # Convolution fold geometry (zero for non-conv folds): the output
    # channel chunk, the output row band, and the input channel slice.
    out_ch_start: int = 0
    out_ch_count: int = 0
    row_start: int = 0
    row_count: int = 0
    in_ch_start: int = 0
    in_ch_count: int = 0

    def __post_init__(self) -> None:
        if self.out_count <= 0:
            raise ResourceError(
                f"fold {self.layer}#{self.phase_index} produces no outputs"
            )


@dataclass
class FoldingPlan:
    """All fold phases of a network, in execution order."""

    phases: list[FoldPhase] = field(default_factory=list)

    def for_layer(self, layer: str) -> list[FoldPhase]:
        return [p for p in self.phases if p.layer == layer]

    def fold_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for phase in self.phases:
            counts[phase.layer] = counts.get(phase.layer, 0) + 1
        return counts

    @property
    def total_macs(self) -> int:
        return sum(p.macs for p in self.phases)

    def report(self) -> str:
        """Human-readable fold summary, one line per layer."""
        lines = ["layer            folds  outputs    macs        partial"]
        per_layer: dict[str, list[FoldPhase]] = {}
        for phase in self.phases:
            per_layer.setdefault(phase.layer, []).append(phase)
        for layer, folds in per_layer.items():
            outputs = sum(p.out_count for p in folds if not p.partial)
            macs = sum(p.macs for p in folds)
            partials = sum(1 for p in folds if p.partial)
            lines.append(
                f"{layer:15s}  {len(folds):5d}  {outputs:8d}  {macs:10d}"
                f"  {partials:7d}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)


@dataclass
class AcceleratorDesign:
    """A complete generated accelerator, pre-compilation.

    ``components`` maps instance names to configured library blocks;
    ``folding`` is the fold plan the compiler schedules; ``shapes``
    caches blob shapes so downstream stages don't re-infer them.
    """

    graph: NetworkGraph
    budget: ResourceBudget
    datapath: DatapathConfig
    components: dict[str, Component]
    folding: FoldingPlan
    shapes: dict[str, TensorShape]
    feature_buffer: str = "feature_buffer"
    weight_buffer: str = "weight_buffer"

    def component(self, instance: str) -> Component:
        try:
            return self.components[instance]
        except KeyError:
            raise ResourceError(
                f"design has no component instance '{instance}'"
            ) from None

    def resource_report(self) -> ResourceCost:
        """Total programmable-logic cost of every instance."""
        return ResourceCost.total(
            [comp.resource_cost() for comp in self.components.values()]
        )

    def check_budget(self) -> None:
        used = self.resource_report()
        if not used.fits_in(self.budget.limit):
            raise ResourceError(
                f"design uses {used}, budget is {self.budget.limit}"
            )

    @property
    def clock_hz(self) -> float:
        return self.budget.device.clock_hz

    def summary(self) -> str:
        """Human-readable one-screen description."""
        used = self.resource_report()
        lines = [
            f"accelerator for '{self.graph.name}' on {self.budget.device.name} "
            f"({self.budget.label})",
            f"  datapath: {self.datapath.lanes} lanes x {self.datapath.simd} simd, "
            f"data {self.datapath.data_format}, weights {self.datapath.weight_format}",
            f"  folds: {len(self.folding)} phases over {len(self.graph)} layers",
            f"  resources: {used}",
        ]
        return "\n".join(lines)
