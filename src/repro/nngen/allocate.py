"""Datapath sizing under the resource constraint.

NN-Gen decides "the best hardware configurations for the network and
resource constraint" (paper §1): here that is the (lanes, simd) shape of
the synergy-neuron array plus buffer capacities, chosen by exhaustive
search over power-of-two configurations, keeping the largest datapath
whose *whole design* (datapath + control + buffers) fits the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.components.accumulator import AccumulatorArray
from repro.components.activation import ActivationUnit
from repro.components.agu import AGURole, AddressGenerationUnit
from repro.components.buffers import OnChipBuffer
from repro.components.classifier import KSorterClassifier
from repro.components.connection_box import ConnectionBox
from repro.components.coordinator import SchedulingCoordinator
from repro.components.dropout import DropOutUnit
from repro.components.lrn import LRNUnit
from repro.components.pooling import PoolingUnit
from repro.components.neuron import SynergyNeuronArray
from repro.devices.cost import ResourceCost
from repro.devices.device import ResourceBudget
from repro.errors import ResourceError
from repro.fixedpoint.format import QFormat
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind
from repro.nngen.design import DatapathConfig

#: Fraction of budget BRAM granted to the two main buffers (the rest is
#: headroom for Approx LUTs and the coordinator context buffer).
BUFFER_BRAM_SHARE = 0.75

_SIMD_CHOICES = (16, 8, 4, 2, 1)


@dataclass(frozen=True)
class NetworkNeeds:
    """What the network requires of the shared datapath."""

    has_conv: bool
    has_pool: bool
    has_lrn: bool
    has_dropout: bool
    has_classifier: bool
    has_recurrent: bool
    activations: tuple[str, ...]
    max_kernel: int
    max_top_k: int

    @staticmethod
    def of(graph: NetworkGraph) -> "NetworkNeeds":
        kinds = {spec.kind for spec in graph.layers}
        activations = []
        if LayerKind.RELU in kinds:
            activations.append("relu")
        if LayerKind.SIGMOID in kinds or LayerKind.SOFTMAX in kinds:
            activations.append("sigmoid")
        if LayerKind.TANH in kinds:
            activations.append("tanh")
        pool_kernels = [
            spec.kernel_size for spec in graph.layers
            if spec.kind in (LayerKind.POOLING, LayerKind.INCEPTION)
            and spec.kernel_size
        ]
        top_ks = [spec.top_k for spec in graph.layers
                  if spec.kind is LayerKind.CLASSIFIER]
        return NetworkNeeds(
            has_conv=(LayerKind.CONVOLUTION in kinds
                      or LayerKind.DEPTHWISE_CONVOLUTION in kinds
                      or LayerKind.INCEPTION in kinds),
            has_pool=LayerKind.POOLING in kinds or LayerKind.INCEPTION in kinds,
            has_lrn=LayerKind.LRN in kinds,
            has_dropout=LayerKind.DROPOUT in kinds,
            has_classifier=(LayerKind.CLASSIFIER in kinds
                            or LayerKind.SOFTMAX in kinds),
            has_recurrent=bool(graph.recurrent_edges)
            or LayerKind.RECURRENT in kinds or LayerKind.ASSOCIATIVE in kinds,
            activations=tuple(activations) or ("relu",),
            max_kernel=max(pool_kernels, default=2),
            max_top_k=max(top_ks, default=1),
        )


def functional_components(
    config: DatapathConfig, needs: NetworkNeeds, prefix: str = ""
) -> dict[str, object]:
    """Instantiate the functional blocks a network needs at a datapath size."""
    data_w = config.data_width
    components: dict[str, object] = {}

    def add(component) -> None:
        components[component.instance] = component

    add(SynergyNeuronArray(
        f"{prefix}neurons", lanes=config.lanes, simd=config.simd,
        data_width=data_w, weight_width=config.weight_width,
        accumulate_width=config.accumulator_width,
    ))
    add(AccumulatorArray(f"{prefix}accumulators", lanes=config.lanes,
                         width=config.accumulator_width))
    add(ActivationUnit(f"{prefix}activation", lanes=config.lanes,
                       width=data_w, functions=needs.activations))
    add(ConnectionBox(
        f"{prefix}connection_box",
        in_ports=max(2, config.lanes), out_ports=max(2, config.lanes),
        width=data_w,
    ))
    if needs.has_pool:
        add(PoolingUnit(f"{prefix}pooling", lanes=max(1, config.lanes // 2),
                        max_kernel=needs.max_kernel, width=data_w))
    if needs.has_lrn:
        add(LRNUnit(f"{prefix}lrn", width=data_w))
    if needs.has_dropout:
        add(DropOutUnit(f"{prefix}dropout", lanes=config.lanes, width=data_w))
    if needs.has_classifier:
        add(KSorterClassifier(f"{prefix}classifier",
                              k=max(1, needs.max_top_k), width=data_w))
    return components


def control_components(
    config: DatapathConfig,
    n_phases: int,
    n_patterns: int,
    prefix: str = "",
) -> dict[str, object]:
    """The three AGUs and the coordinator for a given plan size."""
    components: dict[str, object] = {}
    for role in AGURole:
        agu = AddressGenerationUnit(
            f"{prefix}agu_{role.value}", role=role,
            n_patterns=max(1, n_patterns),
            burst_words=config.simd,
        )
        components[agu.instance] = agu
    coordinator = SchedulingCoordinator(
        f"{prefix}coordinator", n_states=max(2, n_phases),
    )
    components[coordinator.instance] = coordinator
    return components


def buffer_components(
    config: DatapathConfig,
    budget: ResourceBudget,
    feature_demand_bits: int,
    weight_demand_bits: int,
    prefix: str = "",
) -> dict[str, object]:
    """Size the double-buffered feature and weight memories.

    Each buffer gets half of the BRAM share, capped by actual demand —
    a tiny MLP does not monopolise a Z-7045's block RAM.
    """
    available = int(budget.limit.bram_bits * BUFFER_BRAM_SHARE)
    per_buffer = available // 2
    word_bits = config.simd * config.data_width
    weight_word_bits = config.lanes * config.simd * config.weight_width

    def sized(name: str, demand_bits: int, bits_per_word: int) -> OnChipBuffer:
        # Per-bank capacity: demand if it fits, otherwise everything we
        # are allowed (folding will tile the working set down to this).
        bank_bits = min(max(demand_bits, bits_per_word), per_buffer // 2)
        depth = max(1, bank_bits // bits_per_word)
        # Round depth to a power of two for cheap addressing.
        rounded = 1
        while rounded < depth:
            rounded *= 2
        if rounded * bits_per_word * 2 > per_buffer and rounded > 1:
            rounded //= 2
        return OnChipBuffer(name, depth_words=rounded,
                            word_bits=bits_per_word, banks=2)

    return {
        f"{prefix}feature_buffer": sized(f"{prefix}feature_buffer",
                                         feature_demand_bits, word_bits),
        f"{prefix}weight_buffer": sized(f"{prefix}weight_buffer",
                                        weight_demand_bits, weight_word_bits),
    }


def estimate_design_cost(components: dict[str, object]) -> ResourceCost:
    """Total cost of a component set."""
    return ResourceCost.total([c.resource_cost() for c in components.values()])


def _next_pow2(value: int) -> int:
    result = 1
    while result < value:
        result *= 2
    return result


def parallelism_caps(graph: NetworkGraph) -> tuple[int, int]:
    """Largest useful (lanes, simd) for a network.

    Lanes parallelise output values of one fold; simd parallelises the
    dot-product depth.  A datapath wider than the widest layer would
    idle, so NN-Gen never pays for it (this is why the tiny ANN rows of
    paper Table 3 use only a couple of DSPs).
    """
    from repro.frontend.shapes import conv_groups, infer_shapes
    shapes = infer_shapes(graph)
    max_outputs = 1
    max_depth = 1
    for spec in graph.layers:
        if spec.kind.is_convolution:
            out = shapes[spec.tops[0]]
            max_outputs = max(max_outputs, out.size)
            in_channels = shapes[spec.bottoms[0]].channels
            depth = spec.kernel_size ** 2 * (
                in_channels // conv_groups(spec, in_channels))
            max_depth = max(max_depth, depth)
        elif spec.kind.has_weights:
            max_outputs = max(max_outputs, spec.num_output)
            max_depth = max(max_depth, shapes[spec.bottoms[0]].size)
        elif spec.tops:
            max_outputs = max(max_outputs, shapes[spec.tops[0]].size)
    return _next_pow2(max_outputs), _next_pow2(max_depth)


def choose_datapath(
    graph: NetworkGraph,
    budget: ResourceBudget,
    data_format: QFormat,
    weight_format: QFormat,
    feature_demand_bits: int,
    weight_demand_bits: int,
    phase_estimate: int = 16,
) -> DatapathConfig:
    """Largest (lanes, simd) whose full design fits the budget.

    Preference order: more multipliers first, then wider simd (fewer
    lanes) because a wide simd amortises the feature port and matches
    Method-1 sub-block alignment.  Widths are capped by the network's
    own parallelism — a datapath the model cannot feed is wasted area.
    """
    needs = NetworkNeeds.of(graph)
    max_lanes, max_simd = parallelism_caps(graph)
    best: DatapathConfig | None = None
    best_key: tuple[int, int] | None = None
    lanes = 1
    lane_options = []
    while lanes <= min(512, max_lanes):
        lane_options.append(lanes)
        lanes *= 2
    for simd in _SIMD_CHOICES:
        if simd > max_simd and simd > 1:
            continue
        for lane_count in lane_options:
            config = DatapathConfig(
                lanes=lane_count, simd=simd,
                data_format=data_format, weight_format=weight_format,
            )
            components = dict(functional_components(config, needs))
            components.update(control_components(config, phase_estimate,
                                                 phase_estimate))
            try:
                components.update(buffer_components(
                    config, budget, feature_demand_bits, weight_demand_bits))
            except ResourceError:
                continue
            if not estimate_design_cost(components).fits_in(budget.limit):
                continue
            key = (config.multipliers, simd)
            if best_key is None or key > best_key:
                best, best_key = config, key
    if best is None:
        raise ResourceError(
            f"budget {budget.label} ({budget.limit}) cannot fit even a "
            "1-lane datapath"
        )
    return best
