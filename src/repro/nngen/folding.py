"""Temporal and spatial folding.

"Temporal folding maps different layers into the common set of building
blocks, and spatial folding splits a single neural layer and lets the
segments share the building blocks at different time slots" (paper
§3.3).  This module computes the fold phases: how each layer is cut into
segments whose working sets fit the on-chip buffers.

Working sets are counted in *elements* (one feature or weight word of
datapath width); buffer capacities are per bank, since the second bank
is the double-buffering shadow.
"""

from __future__ import annotations

from repro.errors import ResourceError
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind, LayerSpec
from repro.frontend.shapes import TensorShape, conv_groups, infer_shapes
from repro.nngen.design import DatapathConfig, FoldPhase, FoldingPlan


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _conv_folds(
    spec: LayerSpec,
    in_shape: TensorShape,
    out_shape: TensorShape,
    config: DatapathConfig,
    feature_capacity: int,
    weight_capacity: int,
    phases: list[FoldPhase],
) -> None:
    cin = in_shape.channels // conv_groups(spec, in_shape.channels)
    k, stride = spec.kernel_size, spec.stride
    dout, out_h, out_w = out_shape.dims
    macs_per_output = k * k * cin

    # Input-channel folding: weights for one output channel must fit the
    # weight buffer, and a one-row input band of the channel slice (plus
    # one output row) must fit the feature buffer.
    def slice_feasible(depth: int) -> bool:
        one_row_in = depth * min(in_shape.height, k) * in_shape.width
        return (depth * k * k <= weight_capacity
                and one_row_in + out_w <= feature_capacity)

    in_chunks = 1
    while not slice_feasible(_ceil_div(cin, in_chunks)):
        in_chunks += 1
        if in_chunks > cin:
            raise ResourceError(
                f"layer '{spec.name}': a single-channel {k}x{k} kernel "
                f"slice does not fit the buffers (weight capacity "
                f"{weight_capacity}, feature capacity {feature_capacity})"
            )
    cin_chunk = _ceil_div(cin, in_chunks)

    # Output-channel chunking: as many channels as the weight buffer
    # allows, at least one, at most all; prefer multiples of the lanes.
    chunk_c = min(dout, max(1, weight_capacity // (cin_chunk * k * k)))
    if chunk_c > config.lanes:
        chunk_c = max(config.lanes, (chunk_c // config.lanes) * config.lanes)
    chunk_c = min(chunk_c, dout)

    # Spatial banding over output rows so input band + output band fit
    # the feature buffer bank.
    def band_fits(rows: int) -> bool:
        in_rows = min(in_shape.height, rows * stride + k - stride)
        input_band = cin_chunk * in_rows * in_shape.width
        output_band = chunk_c * rows * out_w
        return input_band + output_band <= feature_capacity

    band_rows = out_h
    while band_rows > 1 and not band_fits(band_rows):
        band_rows = _ceil_div(band_rows, 2)
    while not band_fits(band_rows) and chunk_c > 1:
        # A one-row band can still overflow through the output half when
        # many channels are computed together; shrink the channel chunk.
        chunk_c = _ceil_div(chunk_c, 2)
    if not band_fits(band_rows):
        raise ResourceError(
            f"layer '{spec.name}': even a one-row, one-channel band "
            f"overflows the feature buffer ({feature_capacity} words)"
        )

    phase_index = len(phases)
    for out_c in range(0, dout, chunk_c):
        channels = min(chunk_c, dout - out_c)
        for row in range(0, out_h, band_rows):
            rows = min(band_rows, out_h - row)
            in_rows = min(in_shape.height, rows * stride + k - stride)
            for in_c in range(0, cin, cin_chunk):
                depth = min(cin_chunk, cin - in_c)
                outputs = channels * rows * out_w
                phases.append(FoldPhase(
                    layer=spec.name,
                    kind=spec.kind,
                    phase_index=phase_index,
                    out_start=out_c * out_h * out_w + row * out_w,
                    out_count=outputs,
                    in_start=in_c,
                    in_count=depth * in_rows * in_shape.width,
                    macs=outputs * k * k * depth,
                    input_words=depth * in_rows * in_shape.width,
                    weight_words=channels * depth * k * k,
                    output_words=outputs,
                    macs_per_output=k * k * depth,
                    partial=in_c + depth < cin,
                    out_ch_start=out_c,
                    out_ch_count=channels,
                    row_start=row,
                    row_count=rows,
                    in_ch_start=in_c,
                    in_ch_count=depth,
                ))
                phase_index += 1


def _dense_folds(
    spec: LayerSpec,
    in_size: int,
    config: DatapathConfig,
    feature_capacity: int,
    weight_capacity: int,
    phases: list[FoldPhase],
) -> None:
    out_size = spec.num_output
    if spec.kind is LayerKind.RECURRENT:
        in_size = in_size + out_size  # state feedback concatenated

    # Fold inputs so one output neuron's weights and its inputs fit.
    in_chunks = 1
    while (_ceil_div(in_size, in_chunks) > weight_capacity
           or _ceil_div(in_size, in_chunks) + out_size > feature_capacity):
        in_chunks += 1
        if in_chunks > in_size:
            raise ResourceError(
                f"layer '{spec.name}': one input element plus outputs "
                f"overflow the buffers"
            )
    in_chunk = _ceil_div(in_size, in_chunks)

    # Fold outputs so the weight block (chunk_o x in_chunk) fits.
    chunk_o = min(out_size, max(1, weight_capacity // in_chunk))
    if chunk_o > config.lanes:
        chunk_o = max(config.lanes, (chunk_o // config.lanes) * config.lanes)

    phase_index = len(phases)
    for out_start in range(0, out_size, chunk_o):
        outputs = min(chunk_o, out_size - out_start)
        for in_start in range(0, in_size, in_chunk):
            depth = min(in_chunk, in_size - in_start)
            phases.append(FoldPhase(
                layer=spec.name,
                kind=spec.kind,
                phase_index=phase_index,
                out_start=out_start,
                out_count=outputs,
                in_start=in_start,
                in_count=depth,
                macs=outputs * depth,
                input_words=depth,
                weight_words=outputs * depth,
                output_words=outputs,
                macs_per_output=depth,
                partial=in_start + depth < in_size,
            ))
            phase_index += 1


def _pool_folds(
    spec: LayerSpec,
    in_shape: TensorShape,
    out_shape: TensorShape,
    feature_capacity: int,
    phases: list[FoldPhase],
) -> None:
    channels, out_h, out_w = out_shape.dims
    per_channel_in = in_shape.height * in_shape.width
    per_channel_out = out_h * out_w
    chunk_ch = min(
        channels,
        max(1, feature_capacity // max(1, per_channel_in + per_channel_out)),
    )
    if per_channel_in + per_channel_out > feature_capacity:
        raise ResourceError(
            f"layer '{spec.name}': one channel ({per_channel_in} inputs) "
            f"overflows the feature buffer"
        )
    phase_index = len(phases)
    for start in range(0, channels, chunk_ch):
        chans = min(chunk_ch, channels - start)
        outputs = chans * per_channel_out
        phases.append(FoldPhase(
            layer=spec.name,
            kind=spec.kind,
            phase_index=phase_index,
            out_start=start * per_channel_out,
            out_count=outputs,
            in_start=start * per_channel_in,
            in_count=chans * per_channel_in,
            macs=outputs * spec.kernel_size * spec.kernel_size,
            input_words=chans * per_channel_in,
            output_words=outputs,
            macs_per_output=spec.kernel_size * spec.kernel_size,
        ))
        phase_index += 1


def _elementwise_fold(
    spec: LayerSpec,
    in_size: int,
    out_size: int,
    ops_per_output: int,
    phases: list[FoldPhase],
) -> None:
    phases.append(FoldPhase(
        layer=spec.name,
        kind=spec.kind,
        phase_index=len(phases),
        out_start=0,
        out_count=out_size,
        in_count=in_size,
        macs=out_size * ops_per_output,
        input_words=in_size,
        output_words=out_size,
        macs_per_output=ops_per_output,
    ))


def build_folding_plan(
    graph: NetworkGraph,
    config: DatapathConfig,
    feature_capacity_words: int,
    weight_capacity_words: int,
) -> FoldingPlan:
    """Cut every layer into folds that fit the buffers.

    ``feature_capacity_words`` / ``weight_capacity_words`` are per-bank
    element capacities of the two on-chip buffers.
    """
    if feature_capacity_words < 1 or weight_capacity_words < 1:
        raise ResourceError("buffers must hold at least one word")
    shapes = infer_shapes(graph)
    phases: list[FoldPhase] = []
    for spec in graph.topological_order():
        if spec.kind is LayerKind.DATA:
            continue
        in_shape = shapes[spec.bottoms[0]]
        out_shape = shapes[spec.tops[0]] if spec.tops else in_shape
        if spec.kind.is_convolution:
            _conv_folds(spec, in_shape, out_shape, config,
                        feature_capacity_words, weight_capacity_words, phases)
        elif spec.kind in (LayerKind.INNER_PRODUCT, LayerKind.RECURRENT,
                           LayerKind.ASSOCIATIVE):
            _dense_folds(spec, in_shape.size, config,
                         feature_capacity_words, weight_capacity_words, phases)
        elif spec.kind is LayerKind.POOLING:
            _pool_folds(spec, in_shape, out_shape,
                        feature_capacity_words, phases)
        elif spec.kind is LayerKind.LRN:
            _elementwise_fold(spec, in_shape.size, out_shape.size,
                              spec.local_size, phases)
        elif spec.kind is LayerKind.INCEPTION:
            # Modelled as a dense reduction over input channels per output.
            _elementwise_fold(spec, in_shape.size, out_shape.size,
                              in_shape.channels, phases)
        elif spec.kind is LayerKind.ELTWISE:
            # A residual add streams every branch through the
            # accumulators: the input working set is the sum of all
            # bottoms, one add per branch per output element.
            total_in = sum(shapes[b].size for b in spec.bottoms)
            _elementwise_fold(spec, total_in, out_shape.size,
                              len(spec.bottoms), phases)
        else:
            _elementwise_fold(spec, in_shape.size, out_shape.size, 1, phases)
    return FoldingPlan(phases=phases)
