"""One-call facade over the DeepBurning flow.

Every consumer of the pipeline used to hand-wire the same five steps —
parse the descriptive script, infer shapes, run NN-Gen under a budget,
compile the control program, construct a simulator.  :func:`build`
collapses that chain into a single call returning a
:class:`BuildArtifacts` bundle, and :func:`simulate` runs one forward
propagation on it::

    import repro

    artifacts = repro.build(script, device="Z-7020", fraction=0.3)
    result = repro.simulate(artifacts)
    print(result.summary())

Since the stage-memoized pipeline (:mod:`repro.pipeline`) landed,
``build`` is a thin wrapper over a shared
:class:`~repro.pipeline.BuildPipeline`: repeated builds of the same
network reuse shape inference, weight init, weight quantization,
generated designs and compiled control programs stage by stage, and the
returned artifacts carry ``stage_seconds``/``stage_keys`` describing
where the time went and which memoized intermediates they reference.
Results are bit-identical to the monolithic chain the wrapper replaced.

The CLI, the design-space explorer, the experiment runner, the baselines
and the examples all route through this module; only the compiler
package itself and :mod:`repro.pipeline` construct the chain by hand.
The batched serving runtime (:mod:`repro.runtime`) wraps the same
artifacts in a :class:`~repro.runtime.model.CompiledModel` for request
streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.compiler.program import ControlProgram
from repro.devices.device import Device, ResourceBudget
from repro.fixedpoint.format import QFormat
from repro.frontend import load as load_graph
from repro.frontend.graph import NetworkGraph
from repro.frontend.shapes import TensorShape
from repro.nngen.design import AcceleratorDesign
from repro.sim.accel import AcceleratorSimulator, SimulationResult
from repro.sim.plan import ExecutionPlan

if TYPE_CHECKING:
    from repro.estimate.model import EstimateReport
    from repro.pipeline import BuildPipeline

#: Sentinel for ``build(weights=...)``: draw Gaussian weights from the
#: build seed (what every untrained flow did by hand before the facade).
RANDOM_WEIGHTS = "random"


@dataclass(frozen=True)
class BuildArtifacts:
    """Everything the flow produced for one (network, budget) pair.

    Immutable bundle of the parsed graph, inferred blob shapes, the
    generated design, the compiled control program, the weights the
    program was compiled against (``None`` for a weightless timing-only
    build) and the resource budget.  Hand it to :func:`simulate`, to
    :mod:`repro.rtl.emit` for Verilog, or to the serving runtime.
    """

    graph: NetworkGraph
    shapes: dict[str, TensorShape]
    design: AcceleratorDesign
    program: ControlProgram
    budget: ResourceBudget
    weights: dict[str, dict[str, np.ndarray]] | None = None
    seed: int = 0
    #: Per-stage build time split (``parse_s``, ``shapes_s``,
    #: ``nngen_s``, ``quantize_s``, ``compile_s``, ``plan_s``); a stage
    #: served from the pipeline cache reads 0.0.  Diagnostic only —
    #: excluded from equality.
    stage_seconds: dict[str, float] | None = field(default=None,
                                                   compare=False)
    #: Content addresses of the memoized intermediates this bundle was
    #: assembled from (``fingerprint``, ``design``, ``seeded``); None
    #: when built outside the staged pipeline.  Excluded from equality.
    stage_keys: dict[str, object] | None = field(default=None,
                                                 compare=False)

    @property
    def input_blob(self) -> str:
        return self.graph.inputs()[0].tops[0]

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.shapes[self.input_blob].dims

    def random_input(self, seed: int | None = None) -> np.ndarray:
        """A uniform [-1, 1) input tensor of the network's input shape.

        Defaults to ``build`` seed + 1, matching the convention every
        hand-wired call site used, so facade runs are bit-identical to
        the code they replaced.
        """
        rng = np.random.default_rng(
            self.seed + 1 if seed is None else seed)
        return rng.uniform(-1.0, 1.0, self.input_shape)

    def summary(self) -> str:
        return f"{self.design.summary()}\n{self.program.summary()}"


def _as_graph(script_or_graph: str | NetworkGraph) -> NetworkGraph:
    """Accept a parsed graph, source text in any registered frontend
    format (descriptive script, ONNX-style JSON document), or a path to
    such a file — all routed through :func:`repro.frontend.load`."""
    return load_graph(script_or_graph)


def build(
    script_or_graph: str | NetworkGraph,
    *,
    device: str | Device = "Z-7045",
    fraction: float = 0.3,
    budget: ResourceBudget | None = None,
    data_format: QFormat | None = None,
    weight_format: QFormat | None = None,
    max_lanes: int = 0,
    max_simd: int = 0,
    fold_capacity_scale: float = 1.0,
    weights: dict[str, dict[str, np.ndarray]] | str | None = RANDOM_WEIGHTS,
    calibration_inputs: list[np.ndarray] | None = None,
    seed: int = 0,
    label: str = "",
    check: bool = False,
    pipeline: BuildPipeline | None = None,
) -> BuildArtifacts:
    """Run the whole flow: script/graph + constraint → build artifacts.

    ``script_or_graph`` is a :class:`NetworkGraph`, the text of a
    descriptive script, or a path to a ``*.prototxt`` file.  The budget
    is either ``budget`` directly or carved from ``device`` (name or
    :class:`Device`) by ``fraction``.  ``weights`` is a trained weight
    dict, :data:`RANDOM_WEIGHTS` (Gaussian init from ``seed``, the
    default) or ``None`` for a weightless timing-only build.
    ``check=True`` runs the static verifier (:mod:`repro.analysis`)
    over the finished artifacts and raises
    :class:`~repro.errors.VerificationError` on any error-severity
    finding.  The remaining knobs pass straight through to
    :meth:`~repro.nngen.generator.NNGen.generate` and
    :meth:`~repro.compiler.compiler.DeepBurningCompiler.compile`.

    The build runs on a :class:`~repro.pipeline.BuildPipeline` —
    ``pipeline`` directly, or the process-wide default — so stages
    shared with previous builds (same network, seed, formats, budget)
    come out of the stage cache instead of being recomputed.
    """
    # Imported lazily: the pipeline module imports this one for the
    # BuildArtifacts contract.
    from repro.pipeline import default_pipeline

    artifacts = (pipeline or default_pipeline()).build(
        script_or_graph,
        device=device,
        fraction=fraction,
        budget=budget,
        data_format=data_format,
        weight_format=weight_format,
        max_lanes=max_lanes,
        max_simd=max_simd,
        fold_capacity_scale=fold_capacity_scale,
        weights=weights,
        calibration_inputs=calibration_inputs,
        seed=seed,
        label=label,
    )
    if check:
        # Imported lazily: the verifier is an optional stage and the
        # analysis package itself builds designs through this facade.
        from repro.analysis import require_clean, verify_artifacts
        require_clean(verify_artifacts(artifacts))
    return artifacts


def simulator(
    artifacts: BuildArtifacts,
    plan: ExecutionPlan | Callable[[], ExecutionPlan] | None = None,
    optimize: str = "fused",
) -> AcceleratorSimulator:
    """A fresh simulator over the artifacts' program and weights.

    ``plan`` injects a pre-built (typically pipeline-memoized)
    :class:`~repro.sim.plan.ExecutionPlan` — or a lazy provider for one
    — so the session skips weight packing; the serving runtime shares
    one plan across its worker sessions this way.  ``optimize`` selects
    the plan mode (``"fused"`` or ``"naive"``) when the simulator has
    to build its own plan.
    """
    return AcceleratorSimulator(artifacts.program,
                                weights=artifacts.weights, plan=plan,
                                optimize=optimize)


def simulate(
    artifacts: BuildArtifacts,
    inputs: np.ndarray | None = None,
    *,
    functional: bool = True,
    all_blobs: bool = False,
) -> SimulationResult:
    """One forward propagation on the built accelerator.

    ``functional=True`` (the default) runs the bit-level fixed-point
    execution as well as timing/energy; with ``inputs=None`` a random
    input from :meth:`BuildArtifacts.random_input` is used.
    ``all_blobs=True`` dequantizes and returns every intermediate blob
    instead of just the network output.
    """
    if functional and inputs is None:
        inputs = artifacts.random_input()
    return simulator(artifacts).run(inputs, functional=functional,
                                    all_blobs=all_blobs)


def estimate(artifacts: BuildArtifacts) -> "EstimateReport":
    """Analytic latency/energy report, no event simulation.

    Evaluates the closed-form pipeline model
    (:mod:`repro.estimate`) over the artifacts' realized design —
    fold schedule, AGU access-pattern arithmetic, DRAM traffic — and
    returns an :class:`~repro.estimate.model.EstimateReport` shaped
    like :class:`~repro.sim.accel.SimulationResult` (cycles, per-phase
    breakdown, energy), minus functional output.  Orders of magnitude
    cheaper than :func:`simulate`; the design-space explorer's
    ``analytic``/``hybrid`` estimator modes are built on it.
    """
    from repro.estimate import estimate_design
    return estimate_design(artifacts.design)


def simulate_batch(
    artifacts: BuildArtifacts,
    batch: "list[np.ndarray] | np.ndarray",
    *,
    functional: bool = True,
    all_blobs: bool = False,
) -> list[SimulationResult]:
    """One forward propagation per input, vectorized across the batch.

    All inputs run through a single
    :meth:`~repro.sim.accel.AcceleratorSimulator.run_batch` pass over
    the shared execution plan; each entry is an independent request
    starting from clean recurrent state, and the per-sample results are
    bit-identical to running :func:`simulate` once per input.
    """
    return simulator(artifacts).run_batch(batch, functional=functional,
                                          all_blobs=all_blobs)
