"""Exception hierarchy for the DeepBurning reproduction.

Every error raised by this package derives from :class:`DeepBurningError`
so callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class DeepBurningError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParseError(DeepBurningError):
    """A model descriptive script could not be parsed.

    Carries the source location so the user can find the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class GraphError(DeepBurningError):
    """The network graph is malformed (dangling blobs, cycles, etc.)."""


class ShapeError(DeepBurningError):
    """Shape inference failed or tensor shapes are inconsistent."""


class UnsupportedLayerError(DeepBurningError):
    """A layer type has no mapping in the NN component library."""


class ResourceError(DeepBurningError):
    """The resource budget cannot accommodate even a minimal datapath."""


class CompileError(DeepBurningError):
    """The compiler could not produce a control program for the design."""


class LayoutError(DeepBurningError):
    """Data tiling / partitioning failed for a feature or weight tensor."""


class PatternError(DeepBurningError):
    """An address stream could not be represented as an AGU pattern."""


class SimulationError(DeepBurningError):
    """The accelerator simulator reached an inconsistent state."""


class RTLError(DeepBurningError):
    """Verilog emission or structural lint failed."""


class QuantizationError(DeepBurningError):
    """A value cannot be represented in the requested fixed-point format."""


class VerificationError(DeepBurningError):
    """Static verification found an error-severity defect in a design."""


class ServingError(DeepBurningError):
    """The inference serving runtime was misused or reached a bad state."""


class QueueFullError(ServingError):
    """The server's bounded request queue rejected a submission.

    Backpressure signal: the caller should retry later or shed load.
    """


class GatewayError(ServingError):
    """The multi-tenant serving gateway was misused or reached a bad state."""


class AuthError(GatewayError):
    """An API key did not resolve to a registered tenant."""

