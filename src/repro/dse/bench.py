"""Sweep-throughput benchmark: ``repro dse --bench`` → ``BENCH_dse.json``.

Measures how fast the design-space explorer walks one
:class:`~repro.dse.spec.SweepSpec` under four regimes:

baseline
    The pre-memoization flow: every point runs the full
    parse → NN-Gen → quantize → compile → plan chain with a private,
    empty stage cache and no design-group sharing — what every sweep
    paid before the staged pipeline landed.
serial_cold
    ``run_sweep(jobs=1)`` on a fresh :class:`~repro.pipeline.BuildPipeline`
    (stage memoization + dedupe + design-group sharing, one process).
parallel_cold
    The same on a fresh pipeline with ``jobs`` worker processes.
warm
    ``run_sweep(jobs=1)`` again on the serial pass's already-populated
    stage cache (the re-sweep cost inside a long-lived session).

All four regimes must produce byte-identical point results
(``bit_identical`` in the report) — the speedups are pure evaluation
savings, never changed answers.  No persistent
:class:`~repro.dse.cache.DesignCache` is involved: the benchmark
isolates in-process stage memoization from on-disk result caching.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.dse.engine import evaluate_point, run_sweep
from repro.dse.result import SweepResult
from repro.dse.spec import SweepSpec
from repro.frontend.graph import NetworkGraph
from repro.pipeline import BuildPipeline

#: Schema version of BENCH_dse.json.
BENCH_DSE_SCHEMA = 1


@dataclass
class DseBenchReport:
    """Outcome of one sweep-throughput benchmark run."""

    network: str
    points: int
    jobs: int
    #: Per-regime ``{"elapsed_s": ..., "points_per_s": ...}``.
    passes: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Cold memoized sweep (``jobs`` workers) vs the pre-memoization
    #: serial baseline — the headline number.
    speedup: float = 0.0
    #: Warm re-sweep vs the same pre-memoization baseline (what a
    #: re-sweep inside a long-lived session saves; the CI gate).
    warm_speedup: float = 0.0
    #: True when all regimes produced byte-equal point results.
    bit_identical: bool = False
    #: Where the cold serial sweep's fresh build time went.
    stage_split_s: dict[str, float] = field(default_factory=dict)
    deduped: int = 0
    design_shared: int = 0
    spec: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "schema": BENCH_DSE_SCHEMA,
            "network": self.network,
            "points": self.points,
            "jobs": self.jobs,
            "passes": self.passes,
            "speedup": self.speedup,
            "warm_speedup": self.warm_speedup,
            "bit_identical": self.bit_identical,
            "stage_split_s": self.stage_split_s,
            "deduped": self.deduped,
            "design_shared": self.design_shared,
            "spec": self.spec,
        }

    def write(self, path: str) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def render(self) -> str:
        lines = [
            f"dse bench: '{self.network}', {self.points} points, "
            f"jobs={self.jobs}",
        ]
        for name in ("baseline", "serial_cold", "parallel_cold", "warm"):
            entry = self.passes.get(name)
            if entry is None:
                continue
            lines.append(
                f"  {name:14s} {entry['elapsed_s']:8.3f}s  "
                f"{entry['points_per_s']:8.2f} points/s"
            )
        lines.append(
            f"speedup vs baseline: {self.speedup:.2f}x cold, "
            f"{self.warm_speedup:.2f}x warm"
        )
        split = self.stage_split_s
        if split:
            detail = " ".join(
                f"{stage.removesuffix('_s')} {split.get(stage, 0.0):.3f}s"
                for stage in ("nngen_s", "quantize_s", "compile_s", "plan_s"))
            lines.append(f"cold-serial build stages: {detail}")
        lines.append(
            f"sharing: {self.deduped} duplicates deduped, "
            f"{self.design_shared} points shared a realized design"
        )
        lines.append("bit-identical across regimes: "
                     + ("yes" if self.bit_identical else "NO"))
        return "\n".join(lines)


def _baseline_sweep(graph: NetworkGraph, spec: SweepSpec) -> SweepResult:
    """The pre-memoization serial flow: full chain per point, no sharing."""
    started = time.perf_counter()
    results = [
        evaluate_point(graph, point, functional=spec.functional,
                       seed=spec.seed, static_filter=spec.static_filter,
                       pipeline=BuildPipeline())
        for point in spec.points()
    ]
    return SweepResult(results=results,
                       cache_misses=len(results),
                       elapsed_s=time.perf_counter() - started,
                       jobs=1)


def _canonical(sweep: SweepResult) -> list[dict]:
    return [result.to_json() for result in sweep.results]


def run_dse_bench(graph: NetworkGraph, spec: SweepSpec,
                  jobs: int = 4) -> DseBenchReport:
    """Benchmark ``spec`` on ``graph`` across the four regimes."""
    points = spec.points()

    baseline = _baseline_sweep(graph, spec)

    serial_pipe = BuildPipeline()
    serial_cold = run_sweep(graph, spec, jobs=1, pipeline=serial_pipe)
    warm = run_sweep(graph, spec, jobs=1, pipeline=serial_pipe)

    parallel_cold = run_sweep(graph, spec, jobs=jobs,
                              pipeline=BuildPipeline())

    sweeps = {
        "baseline": baseline,
        "serial_cold": serial_cold,
        "parallel_cold": parallel_cold,
        "warm": warm,
    }
    reference = _canonical(baseline)
    bit_identical = all(_canonical(sweep) == reference
                        for sweep in sweeps.values())

    def rate(sweep: SweepResult) -> float:
        return len(points) / sweep.elapsed_s if sweep.elapsed_s else 0.0

    passes = {
        name: {"elapsed_s": sweep.elapsed_s, "points_per_s": rate(sweep)}
        for name, sweep in sweeps.items()
    }
    return DseBenchReport(
        network=graph.name,
        points=len(points),
        jobs=jobs,
        passes=passes,
        speedup=rate(parallel_cold) / rate(baseline) if rate(baseline)
        else 0.0,
        warm_speedup=rate(warm) / rate(baseline) if rate(baseline)
        else 0.0,
        bit_identical=bit_identical,
        stage_split_s=serial_cold.stage_split(),
        deduped=serial_cold.deduped,
        design_shared=serial_cold.design_shared,
        spec={
            "device": spec.device,
            "fractions": list(spec.fractions),
            "data_formats": [list(bits) for bits in spec.data_formats],
            "weight_formats": [list(bits) for bits in spec.weight_formats],
            "max_lanes": list(spec.max_lanes),
            "max_simd": list(spec.max_simd),
            "fold_capacity_scales": list(spec.fold_capacity_scales),
            "functional": spec.functional,
            "static_filter": spec.static_filter,
            "seed": spec.seed,
        },
    )
