"""Sweep-throughput benchmark: ``repro dse --bench`` → ``BENCH_dse.json``.

Measures how fast the design-space explorer walks one
:class:`~repro.dse.spec.SweepSpec` under four exact regimes:

baseline
    The pre-memoization flow: every point runs the full
    parse → NN-Gen → quantize → compile → plan chain with a private,
    empty stage cache and no design-group sharing — what every sweep
    paid before the staged pipeline landed.
serial_cold
    ``run_sweep(jobs=1)`` on a fresh :class:`~repro.pipeline.BuildPipeline`
    (stage memoization + dedupe + design-group sharing, one process).
parallel_cold
    The same on a fresh pipeline with ``jobs`` worker processes.
warm
    ``run_sweep(jobs=1)`` again on the serial pass's already-populated
    stage cache (the re-sweep cost inside a long-lived session).

Schema 2 adds the estimator regimes over a widened grid
(:func:`widen_spec`, ≥500 points of the same axes plus collapse-friendly
cap/fold-scale ladders):

analytic_cold / analytic_warm
    ``run_sweep(estimator="analytic")`` on a fresh pipeline, then again
    on the warmed one — the closed-form model, no compile, no simulator.
hybrid_cold / hybrid
    ``run_sweep(estimator="hybrid")``: the wide grid analytically, then
    only the Pareto frontier + knee neighborhood through the exact
    simulator.  The cold pass pays the replayed designs' first compile;
    the warm pass is measured under the same fully-memoized conditions
    as the base ``warm`` regime (the ``hybrid_under_warm`` comparison).
exact_wide
    The exact engine over the same wide grid (design-group sharing and
    all), for the honest hybrid-vs-exact speedup and the
    ``frontier_match`` bit-identity check.

Schema 2 also records zoo-wide estimator accuracy
(:func:`repro.estimate.cross_validate`) under ``estimator_accuracy``.

All four exact regimes must produce byte-identical point results
(``bit_identical`` in the report) — the speedups are pure evaluation
savings, never changed answers.  No persistent
:class:`~repro.dse.cache.DesignCache` is involved: the benchmark
isolates in-process stage memoization from on-disk result caching.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace

from repro.dse.engine import evaluate_point, run_sweep
from repro.dse.result import SweepResult, pareto_frontier
from repro.dse.spec import SweepSpec
from repro.errors import DeepBurningError
from repro.frontend.graph import NetworkGraph
from repro.pipeline import BuildPipeline

#: Schema version of BENCH_dse.json.
BENCH_DSE_SCHEMA = 2

#: Widening ladders for the estimator regimes.  Cap values at or above
#: what realistic budgets realize collapse onto already-realized designs
#: (the design stage keys on *effective* caps), so the wide grid grows
#: the point count ~10x faster than the distinct-design count — and the
#: Pareto frontier (what hybrid replays exactly) stays a handful of
#: genuinely distinct lanes×SIMD steps.
WIDE_FRACTIONS = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4,
                  0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
WIDE_LANE_CAPS = (0, 2, 4, 8, 16, 32, 48, 64, 96)
WIDE_SIMD_CAPS = (0, 8, 16, 24, 32, 48)
WIDE_FOLD_SCALES = (1.0,)


def _merged(base: tuple, extra: tuple) -> tuple:
    return tuple(sorted(set(base) | set(extra)))


def widen_spec(spec: SweepSpec, min_points: int = 500) -> SweepSpec:
    """``spec`` widened to ≥ ``min_points`` for the estimator regimes.

    Unions each axis with the collapse-friendly ladders above and
    forces a timing-only, unfiltered sweep (what the analytic estimator
    evaluates).  Raises when the result still falls short — the caller
    asked for a scale this grid cannot express.
    """
    wide = replace(
        spec,
        fractions=_merged(spec.fractions, WIDE_FRACTIONS),
        max_lanes=_merged(spec.max_lanes, WIDE_LANE_CAPS),
        max_simd=_merged(spec.max_simd, WIDE_SIMD_CAPS),
        fold_capacity_scales=_merged(spec.fold_capacity_scales,
                                     WIDE_FOLD_SCALES),
        functional=False,
        static_filter=False,
        _points=(),
    )
    n_points = len(wide.points())
    if n_points < min_points:
        raise DeepBurningError(
            f"widened spec has {n_points} points, need >= {min_points}")
    return wide


@dataclass
class DseBenchReport:
    """Outcome of one sweep-throughput benchmark run."""

    network: str
    points: int
    jobs: int
    #: Per-regime ``{"elapsed_s": ..., "points_per_s": ...}``.
    passes: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Cold memoized sweep (``jobs`` workers) vs the pre-memoization
    #: serial baseline — the headline number.
    speedup: float = 0.0
    #: Warm re-sweep vs the same pre-memoization baseline (what a
    #: re-sweep inside a long-lived session saves; the CI gate).
    warm_speedup: float = 0.0
    #: True when all regimes produced byte-equal point results.
    bit_identical: bool = False
    #: Points in the widened estimator grid (0 = estimator regimes off).
    wide_points: int = 0
    #: Frontier/knee points the hybrid pass replayed exactly.
    hybrid_replayed: int = 0
    #: Exact-wide elapsed over hybrid elapsed on the same wide grid.
    hybrid_speedup: float = 0.0
    #: True when the ≥500-point hybrid sweep beat the warm exact
    #: re-sweep of the *base* grid (the acceptance gate).
    hybrid_under_warm: bool = False
    #: True when the hybrid frontier is byte-identical to the exact
    #: sweep's frontier over the same wide grid.
    frontier_match: bool = False
    #: Zoo-wide estimator accuracy
    #: (:meth:`repro.estimate.ValidationReport.to_json`).
    estimator_accuracy: dict = field(default_factory=dict)
    #: Where the cold serial sweep's fresh build time went.
    stage_split_s: dict[str, float] = field(default_factory=dict)
    deduped: int = 0
    design_shared: int = 0
    spec: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "schema": BENCH_DSE_SCHEMA,
            "network": self.network,
            "points": self.points,
            "jobs": self.jobs,
            "passes": self.passes,
            "speedup": self.speedup,
            "warm_speedup": self.warm_speedup,
            "bit_identical": self.bit_identical,
            "wide_points": self.wide_points,
            "hybrid_replayed": self.hybrid_replayed,
            "hybrid_speedup": self.hybrid_speedup,
            "hybrid_under_warm": self.hybrid_under_warm,
            "frontier_match": self.frontier_match,
            "estimator_accuracy": self.estimator_accuracy,
            "stage_split_s": self.stage_split_s,
            "deduped": self.deduped,
            "design_shared": self.design_shared,
            "spec": self.spec,
        }

    def write(self, path: str) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def render(self) -> str:
        lines = [
            f"dse bench: '{self.network}', {self.points} points, "
            f"jobs={self.jobs}",
        ]
        for name in ("baseline", "serial_cold", "parallel_cold", "warm",
                     "analytic_cold", "analytic_warm", "hybrid_cold",
                     "hybrid", "exact_wide"):
            entry = self.passes.get(name)
            if entry is None:
                continue
            lines.append(
                f"  {name:14s} {entry['elapsed_s']:8.3f}s  "
                f"{entry['points_per_s']:8.2f} points/s"
            )
        lines.append(
            f"speedup vs baseline: {self.speedup:.2f}x cold, "
            f"{self.warm_speedup:.2f}x warm"
        )
        if self.wide_points:
            lines.append(
                f"wide grid: {self.wide_points} points, hybrid replayed "
                f"{self.hybrid_replayed} exactly, {self.hybrid_speedup:.2f}x "
                f"vs exact on the same grid"
            )
            lines.append(
                "hybrid under warm base sweep: "
                + ("yes" if self.hybrid_under_warm else "NO")
                + "; frontier identical to exact: "
                + ("yes" if self.frontier_match else "NO")
            )
        accuracy = self.estimator_accuracy
        if accuracy:
            lines.append(
                f"estimator accuracy over {len(accuracy.get('per_net', {}))}"
                f" zoo nets: max rel cycle error "
                f"{accuracy.get('max_rel_cycle_error', 0.0):.4%}, mean "
                f"{accuracy.get('mean_rel_cycle_error', 0.0):.4%} "
                + ("(PASS)" if accuracy.get("ok") else "(FAIL)")
            )
        split = self.stage_split_s
        if split:
            detail = " ".join(
                f"{stage.removesuffix('_s')} {split.get(stage, 0.0):.3f}s"
                for stage in ("nngen_s", "quantize_s", "compile_s", "plan_s"))
            lines.append(f"cold-serial build stages: {detail}")
        lines.append(
            f"sharing: {self.deduped} duplicates deduped, "
            f"{self.design_shared} points shared a realized design"
        )
        lines.append("bit-identical across regimes: "
                     + ("yes" if self.bit_identical else "NO"))
        return "\n".join(lines)


def _baseline_sweep(graph: NetworkGraph, spec: SweepSpec) -> SweepResult:
    """The pre-memoization serial flow: full chain per point, no sharing."""
    started = time.perf_counter()
    results = [
        evaluate_point(graph, point, functional=spec.functional,
                       seed=spec.seed, static_filter=spec.static_filter,
                       pipeline=BuildPipeline())
        for point in spec.points()
    ]
    return SweepResult(results=results,
                       cache_misses=len(results),
                       elapsed_s=time.perf_counter() - started,
                       jobs=1)


def _canonical(sweep: SweepResult) -> list[dict]:
    return [result.to_json() for result in sweep.results]


def _frontier_json(sweep: SweepResult) -> list[dict]:
    return [result.to_json() for result in pareto_frontier(sweep.results)]


def run_dse_bench(graph: NetworkGraph, spec: SweepSpec, jobs: int = 4,
                  wide_min_points: int = 500,
                  validate_networks: "list[str] | None" = None,
                  ) -> DseBenchReport:
    """Benchmark ``spec`` on ``graph`` across all regimes.

    ``wide_min_points`` sizes the estimator grid (0 disables the
    estimator regimes and the accuracy sweep); ``validate_networks``
    restricts the accuracy cross-validation (default: the whole zoo).
    """
    points = spec.points()

    baseline = _baseline_sweep(graph, spec)

    serial_pipe = BuildPipeline()
    serial_cold = run_sweep(graph, spec, jobs=1, pipeline=serial_pipe)
    warm = run_sweep(graph, spec, jobs=1, pipeline=serial_pipe)

    parallel_cold = run_sweep(graph, spec, jobs=jobs,
                              pipeline=BuildPipeline())

    sweeps = {
        "baseline": baseline,
        "serial_cold": serial_cold,
        "parallel_cold": parallel_cold,
        "warm": warm,
    }
    reference = _canonical(baseline)
    bit_identical = all(_canonical(sweep) == reference
                        for sweep in sweeps.values())

    def rate(sweep: SweepResult) -> float:
        return len(points) / sweep.elapsed_s if sweep.elapsed_s else 0.0

    passes = {
        name: {"elapsed_s": sweep.elapsed_s, "points_per_s": rate(sweep)}
        for name, sweep in sweeps.items()
    }

    wide_points = 0
    hybrid_replayed = 0
    hybrid_speedup = 0.0
    hybrid_under_warm = False
    frontier_match = False
    estimator_accuracy: dict = {}
    if wide_min_points:
        wide = widen_spec(spec, min_points=wide_min_points)
        wide_points = len(wide.points())
        estimator_pipe = BuildPipeline()
        # hybrid_cold pays the first compile of every replayed frontier
        # design; "hybrid" is the warm second run, measured under the
        # same fully-memoized conditions as the base "warm" regime it
        # is gated against.
        wide_sweeps = {
            "analytic_cold": run_sweep(graph, wide, jobs=1,
                                       pipeline=estimator_pipe,
                                       estimator="analytic"),
            "analytic_warm": run_sweep(graph, wide, jobs=1,
                                       pipeline=estimator_pipe,
                                       estimator="analytic"),
            "hybrid_cold": run_sweep(graph, wide, jobs=1,
                                     pipeline=estimator_pipe,
                                     estimator="hybrid"),
            "hybrid": run_sweep(graph, wide, jobs=1,
                                pipeline=estimator_pipe,
                                estimator="hybrid"),
            "exact_wide": run_sweep(graph, wide, jobs=1,
                                    pipeline=estimator_pipe),
        }
        for name, sweep in wide_sweeps.items():
            passes[name] = {
                "elapsed_s": sweep.elapsed_s,
                "points_per_s": (wide_points / sweep.elapsed_s
                                 if sweep.elapsed_s else 0.0),
            }
        hybrid = wide_sweeps["hybrid"]
        exact_wide = wide_sweeps["exact_wide"]
        hybrid_replayed = hybrid.replayed
        hybrid_speedup = (exact_wide.elapsed_s / hybrid.elapsed_s
                          if hybrid.elapsed_s else 0.0)
        hybrid_under_warm = hybrid.elapsed_s < warm.elapsed_s
        frontier_match = _frontier_json(hybrid) == _frontier_json(exact_wide)

        from repro.estimate import cross_validate
        estimator_accuracy = cross_validate(
            networks=validate_networks, device=spec.device).to_json()

    return DseBenchReport(
        network=graph.name,
        points=len(points),
        jobs=jobs,
        passes=passes,
        speedup=rate(parallel_cold) / rate(baseline) if rate(baseline)
        else 0.0,
        warm_speedup=rate(warm) / rate(baseline) if rate(baseline)
        else 0.0,
        bit_identical=bit_identical,
        wide_points=wide_points,
        hybrid_replayed=hybrid_replayed,
        hybrid_speedup=hybrid_speedup,
        hybrid_under_warm=hybrid_under_warm,
        frontier_match=frontier_match,
        estimator_accuracy=estimator_accuracy,
        stage_split_s=serial_cold.stage_split(),
        deduped=serial_cold.deduped,
        design_shared=serial_cold.design_shared,
        spec={
            "device": spec.device,
            "fractions": list(spec.fractions),
            "data_formats": [list(bits) for bits in spec.data_formats],
            "weight_formats": [list(bits) for bits in spec.weight_formats],
            "max_lanes": list(spec.max_lanes),
            "max_simd": list(spec.max_simd),
            "fold_capacity_scales": list(spec.fold_capacity_scales),
            "functional": spec.functional,
            "static_filter": spec.static_filter,
            "seed": spec.seed,
        },
    )
