"""The sweep engine: enumerate, cache-check, evaluate, aggregate.

Each sweep point runs the full pipeline through the
:func:`repro.api.build` facade in a worker process (``--jobs N``) or
serially (``--jobs 1``).  Results come back in point order regardless
of completion order, so parallel and serial sweeps are bit-identical.
A :class:`~repro.dse.cache.DesignCache` short-circuits points already
evaluated for the same network fingerprint.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed

import numpy as np

from repro import api
from repro.devices.device import budget_fraction, device_by_name
from repro.dse.cache import DesignCache
from repro.dse.result import PointResult, SweepResult
from repro.dse.spec import SweepPoint, SweepSpec
from repro.errors import DeepBurningError
from repro.frontend.graph import NetworkGraph
from repro.nn.reference import ReferenceNetwork


def evaluate_point(graph: NetworkGraph, point: SweepPoint,
                   functional: bool = False, seed: int = 0,
                   static_filter: bool = False) -> PointResult:
    """Run one point through the build→simulate facade.

    Any :class:`~repro.errors.DeepBurningError` — a budget that cannot
    fit the minimal datapath, an unsupported layer, a compile failure —
    becomes a structured ``infeasible`` result carrying the reason, so a
    sweep always completes.  With ``static_filter=True`` the built
    design runs the static verifier first; a design with error-severity
    findings becomes a ``rejected`` result without ever simulating.
    """
    try:
        device = device_by_name(point.device)
        artifacts = api.build(
            graph,
            budget=budget_fraction(device, point.fraction),
            data_format=point.data_format,
            weight_format=point.weight_format,
            max_lanes=point.max_lanes,
            max_simd=point.max_simd,
            fold_capacity_scale=point.fold_capacity_scale,
            weights=api.RANDOM_WEIGHTS if functional else None,
            seed=seed,
        )
        if static_filter:
            from repro.analysis import verify_artifacts
            report = verify_artifacts(artifacts)
            if not report.ok:
                first = report.errors[0]
                return PointResult(
                    point=point, status="rejected",
                    reason=(f"{len(report.errors)} static error(s); first: "
                            f"{first.rule} at {first.where}: "
                            f"{first.message}"),
                )
        design = artifacts.design
        sim = api.simulate(artifacts, functional=functional)
        accuracy = None
        if functional:
            inputs = artifacts.random_input()
            reference = ReferenceNetwork(graph,
                                         artifacts.weights).output(inputs)
            accuracy = _fidelity(np.asarray(sim.output, dtype=float),
                                 np.asarray(reference, dtype=float))
        used = design.resource_report()
        return PointResult(
            point=point,
            status="ok",
            lanes=design.datapath.lanes,
            simd=design.datapath.simd,
            folds=len(design.folding),
            dsp=used.dsp,
            lut=used.lut,
            ff=used.ff,
            bram_bits=used.bram_bits,
            cycles=sim.cycles,
            time_s=sim.time_s,
            energy_j=sim.energy.total_j,
            power_w=sim.energy.average_power_w,
            macs=sim.macs,
            accuracy=accuracy,
        )
    except DeepBurningError as error:
        return PointResult(point=point, status="infeasible",
                           reason=str(error))


def _fidelity(quantized: np.ndarray, reference: np.ndarray) -> float:
    """Output agreement in [0, 1]: 1 - relative RMS error, floored at 0."""
    scale = float(np.sqrt(np.mean(np.square(reference))))
    if scale == 0.0:
        return 1.0 if not np.any(quantized) else 0.0
    error = float(np.sqrt(np.mean(np.square(quantized - reference))))
    return max(0.0, 1.0 - error / scale)


def _evaluate_job(args: tuple) -> tuple[int, PointResult]:
    """Process-pool entry point: evaluate one indexed sweep point."""
    index, graph, point, functional, seed, static_filter = args
    return index, evaluate_point(graph, point, functional=functional,
                                 seed=seed, static_filter=static_filter)


def run_sweep(graph: NetworkGraph, spec: SweepSpec, jobs: int = 1,
              cache: DesignCache | None = None) -> SweepResult:
    """Evaluate every point of ``spec``, in parallel when ``jobs > 1``.

    Results keep the spec's point order, so a parallel sweep equals a
    serial one row for row.  Cache hits skip evaluation entirely; fresh
    results are written back before the sweep returns.
    """
    if jobs < 1:
        raise DeepBurningError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    points = spec.points()
    # Snapshot so a reused cache object reports per-sweep stats.  (The
    # cache defines __len__, so compare against None, never truthiness.)
    hits_before = cache.stats.hits if cache is not None else 0
    misses_before = cache.stats.misses if cache is not None else 0
    fingerprint = graph.fingerprint() if cache is not None else ""
    results: dict[int, PointResult] = {}
    pending: list[tuple[int, SweepPoint]] = []
    keys: dict[int, str] = {}
    for index, point in enumerate(points):
        if cache is not None:
            key = DesignCache.key(fingerprint, point,
                                  functional=spec.functional, seed=spec.seed,
                                  static_filter=spec.static_filter)
            keys[index] = key
            hit = cache.load(key)
            if hit is not None:
                results[index] = hit
                continue
        pending.append((index, point))

    if jobs > 1 and len(pending) > 1:
        job_args = [(index, graph, point, spec.functional, spec.seed,
                     spec.static_filter)
                    for index, point in pending]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_evaluate_job, args) for args in job_args]
            for future in as_completed(futures):
                index, result = future.result()
                results[index] = result
    else:
        for index, point in pending:
            results[index] = evaluate_point(
                graph, point, functional=spec.functional, seed=spec.seed,
                static_filter=spec.static_filter)

    if cache is not None:
        for index, _ in pending:
            cache.store(keys[index], results[index])

    return SweepResult(
        results=[results[index] for index in range(len(points))],
        cache_hits=(cache.stats.hits - hits_before)
        if cache is not None else 0,
        cache_misses=(cache.stats.misses - misses_before)
        if cache is not None else len(pending),
        elapsed_s=time.perf_counter() - started,
        jobs=jobs,
    )
