"""The sweep engine: enumerate, dedupe, cache-check, evaluate, aggregate.

Each sweep point runs the staged build pipeline
(:mod:`repro.pipeline`) through the :func:`repro.api.build` facade, so
points of one sweep share every stage they have in common — weight
init, quantization, datapath selection, even whole realized designs
when different cap values clamp to the same effective datapath.  The
engine exploits that sharing three ways before any evaluation runs:

1. persistent-cache hits (:class:`~repro.dse.cache.DesignCache`) are
   resolved up front, so a fully warm sweep never spawns a process;
2. exact-duplicate points are deduped (evaluated once, replicated);
3. remaining points are grouped by their *realized-design* content
   address — every metric in a :class:`PointResult` is a function of
   the realized design (plus the sweep-wide seed), so one evaluation
   per group serves every member.

Parallel sweeps (``--jobs N``) dispatch contiguous chunks of group
representatives to a process pool primed once per sweep: under the
``fork`` start method the workers inherit the parent's pipeline --
graph, weights, quantized weights, datapath choices -- copy-on-write,
and only the small :class:`~repro.dse.spec.SweepPoint` deltas travel
per chunk; under ``spawn`` an initializer ships the sweep context once
per worker instead of once per point.  Results come back in point
order regardless of completion order, so parallel, serial, cold and
warm sweeps are all bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import numpy as np

from repro import api
from repro.compiler.address import AddressFlowGenerator
from repro.compiler.control import build_coordinator_program
from repro.compiler.memmap import build_memory_map
from repro.compiler.reduce import reduce_agus
from repro.components.agu import AddressGenerationUnit, AGURole
from repro.devices.device import budget_fraction, device_by_name
from repro.dse.cache import DesignCache
from repro.dse.result import (
    PointResult,
    SweepResult,
    frontier_knee,
    knee_neighborhood,
    pareto_frontier,
)
from repro.dse.spec import SweepPoint, SweepSpec
from repro.errors import DeepBurningError
from repro.estimate.model import AnalyticEstimator
from repro.fixedpoint.format import QFormat
from repro.frontend.graph import NetworkGraph
from repro.nngen.generator import NNGen
from repro.pipeline import BuildPipeline, default_pipeline, stage_key

#: Evaluation modes: the event simulator on compiled programs, the
#: closed-form estimator on bare designs, or the analytic sweep with an
#: exact replay of the Pareto frontier and knee neighborhood.
ESTIMATORS = ("exact", "analytic", "hybrid")


def _check_estimator(estimator: str, functional: bool,
                     static_filter: bool) -> None:
    if estimator not in ESTIMATORS:
        raise DeepBurningError(
            f"unknown estimator '{estimator}'; options: {ESTIMATORS}")
    if estimator == "analytic" and functional:
        raise DeepBurningError(
            "the analytic estimator never executes the network; use "
            "estimator='hybrid' to score fidelity on the replayed "
            "frontier, or estimator='exact'")
    if estimator != "exact" and static_filter:
        raise DeepBurningError(
            "the static filter needs a compiled program, which the "
            "analytic estimator skips; use estimator='exact'")


def evaluate_point(graph: NetworkGraph, point: SweepPoint,
                   functional: bool = False, seed: int = 0,
                   static_filter: bool = False,
                   pipeline: BuildPipeline | None = None,
                   estimator: str = "exact") -> PointResult:
    """Run one point through the build→simulate (or estimate) facade.

    Any :class:`~repro.errors.DeepBurningError` — a budget that cannot
    fit the minimal datapath, an unsupported layer, a compile failure —
    becomes a structured ``infeasible`` result carrying the reason, so a
    sweep always completes.  With ``static_filter=True`` the built
    design runs the static verifier first; a design with error-severity
    findings becomes a ``rejected`` result without ever simulating.

    ``estimator="analytic"`` evaluates the closed-form model
    (:mod:`repro.estimate`) on the realized design alone — no control
    program is compiled, no weights are built — which is what makes
    thousand-point sweeps affordable.

    ``pipeline`` carries the stage cache shared across the sweep (the
    process-wide default when omitted); the result's ``stage_s`` records
    the per-stage build time, 0.0 for memoized stages, plus the
    ``estimate_s``/``simulate_s`` evaluation time.
    """
    _check_estimator(estimator, functional, static_filter)
    pipe = pipeline or default_pipeline()
    if estimator == "analytic":
        return _evaluate_analytic(graph, point, pipe)
    try:
        device = device_by_name(point.device)
        artifacts = api.build(
            graph,
            budget=budget_fraction(device, point.fraction),
            data_format=point.data_format,
            weight_format=point.weight_format,
            max_lanes=point.max_lanes,
            max_simd=point.max_simd,
            fold_capacity_scale=point.fold_capacity_scale,
            weights=api.RANDOM_WEIGHTS if functional else None,
            seed=seed,
            pipeline=pipe,
        )
        if static_filter:
            from repro.analysis import verify_artifacts
            report = verify_artifacts(artifacts)
            if not report.ok:
                first = report.errors[0]
                return PointResult(
                    point=point, status="rejected",
                    reason=(f"{len(report.errors)} static error(s); first: "
                            f"{first.rule} at {first.where}: "
                            f"{first.message}"),
                    stage_s=_stage_split(artifacts),
                )
        design = artifacts.design
        plan = pipe.plan_for(artifacts) if functional else None
        sim_started = time.perf_counter()
        sim = api.simulator(artifacts, plan=plan).run(
            artifacts.random_input() if functional else None,
            functional=functional)
        simulate_s = time.perf_counter() - sim_started
        accuracy = None
        if functional:
            reference = pipe.reference_output(artifacts)
            accuracy = _fidelity(np.asarray(sim.output, dtype=float),
                                 np.asarray(reference, dtype=float))
        used = design.resource_report()
        stage_s = _stage_split(artifacts)
        stage_s["simulate_s"] = simulate_s
        return PointResult(
            point=point,
            status="ok",
            lanes=design.datapath.lanes,
            simd=design.datapath.simd,
            folds=len(design.folding),
            dsp=used.dsp,
            lut=used.lut,
            ff=used.ff,
            bram_bits=used.bram_bits,
            cycles=sim.cycles,
            time_s=sim.time_s,
            energy_j=sim.energy.total_j,
            power_w=sim.energy.average_power_w,
            macs=sim.macs,
            accuracy=accuracy,
            estimator="exact",
            stage_s=stage_s,
        )
    except DeepBurningError as error:
        return PointResult(point=point, status="infeasible",
                           reason=str(error))


def _reduce_design(design: "api.AcceleratorDesign", design_key: str,
                   pipe: BuildPipeline) -> float:
    """Install the compile-time reduced AGUs without a full compile.

    ``PointResult.lut``/``ff`` and the static-power term of the energy
    model are read off the *compiled* design, whose template AGUs the
    compiler has reduced to exactly the patterns the network exercises
    (:func:`repro.compiler.reduce.reduce_agus`).  The analytic path
    replays just that reduction — memory map, address plans,
    coordinator tables — and memoizes the reduced AGU parameters per
    design key, so every sweep point sharing a design pays once and
    reports resources bit-identical to the exact path.  Re-installing
    from memoized parameters (rather than memoizing the side effect)
    keeps the result correct even if the design stage itself was
    evicted and re-realised from a fresh template.
    """
    def build() -> dict[str, tuple[str, int, int, int, tuple[str, ...]]]:
        memory_map = build_memory_map(design.graph, design.datapath.simd)
        plans = AddressFlowGenerator(design, memory_map).plans()
        coordinator = build_coordinator_program(design, plans)
        reduced = reduce_agus(design, coordinator)
        return {instance: (agu.role.value, agu.n_patterns,
                           agu.address_width, agu.burst_words, agu.fields)
                for instance, agu in reduced.items()}

    params, seconds = pipe.cache.get_or_build(
        "reduce", stage_key("reduce", design=design_key), build)
    for instance, (role, n_patterns, width, burst, fields) in params.items():
        current = design.components.get(instance)
        if (isinstance(current, AddressGenerationUnit)
                and current.n_patterns == n_patterns
                and current.fields == tuple(fields)):
            continue
        design.components[instance] = AddressGenerationUnit(
            instance, role=AGURole(role), n_patterns=n_patterns,
            address_width=width, burst_words=burst, fields=tuple(fields))
    return seconds


def _evaluate_analytic(graph: NetworkGraph, point: SweepPoint,
                       pipe: BuildPipeline) -> PointResult:
    """The estimator path: realize the design, skip compile entirely.

    The closed-form report depends only on the realized design, so it
    is memoized in the pipeline's stage cache under the design key —
    a warm re-sweep reads every estimate straight out of the cache.
    The AGU-reduction pass runs first (also memoized per design) so
    resource and static-power figures match the compiled design.
    """
    try:
        device = device_by_name(point.device)
        budget = budget_fraction(device, point.fraction)
        design, design_key, nngen_s = pipe.design(
            graph, pipe.fingerprint(graph), budget,
            point.data_format, point.weight_format,
            max_lanes=point.max_lanes, max_simd=point.max_simd,
            fold_capacity_scale=point.fold_capacity_scale)
        reduce_s = _reduce_design(design, design_key, pipe)
        report, estimate_s = pipe.cache.get_or_build(
            "estimate", stage_key("estimate", design=design_key),
            lambda: AnalyticEstimator(design).report())
        used = design.resource_report()
        return PointResult(
            point=point,
            status="ok",
            lanes=design.datapath.lanes,
            simd=design.datapath.simd,
            folds=len(design.folding),
            dsp=used.dsp,
            lut=used.lut,
            ff=used.ff,
            bram_bits=used.bram_bits,
            cycles=report.cycles,
            time_s=report.time_s,
            energy_j=report.energy.total_j,
            power_w=report.energy.average_power_w,
            macs=report.macs,
            accuracy=None,
            estimator="analytic",
            stage_s={"build_s": nngen_s + reduce_s, "nngen_s": nngen_s,
                     "estimate_s": estimate_s},
        )
    except DeepBurningError as error:
        return PointResult(point=point, status="infeasible",
                           reason=str(error), estimator="analytic")


def _stage_split(artifacts: api.BuildArtifacts) -> dict[str, float]:
    """The point's build-time split: total plus the per-stage shares."""
    timings = artifacts.stage_seconds or {}
    split = {stage: timings.get(stage, 0.0)
             for stage in ("nngen_s", "quantize_s", "compile_s", "plan_s")}
    split["build_s"] = sum(timings.values())
    return split


def _fidelity(quantized: np.ndarray, reference: np.ndarray) -> float:
    """Output agreement in [0, 1]: 1 - relative RMS error, floored at 0."""
    scale = float(np.sqrt(np.mean(np.square(reference))))
    if scale == 0.0:
        return 1.0 if not np.any(quantized) else 0.0
    error = float(np.sqrt(np.mean(np.square(quantized - reference))))
    return max(0.0, 1.0 - error / scale)


# ---------------------------------------------------------------------------
# Shared-artifact worker protocol

#: Sweep context shared by every worker of one pool: set in the parent
#: before a fork-based pool is created (children inherit it
#: copy-on-write, stage cache included) or installed per worker by the
#: spawn initializer.
_WORKER_STATE: dict | None = None


def _prime_worker(payload: tuple | None = None) -> None:
    """Pool initializer for start methods without memory inheritance.

    Under ``spawn`` the pickled sweep context arrives here once per
    worker — each worker then builds its own stage cache, still shared
    across every chunk it evaluates.  Under ``fork`` the parent set
    :data:`_WORKER_STATE` before the pool existed and ``payload`` is
    ``None``.
    """
    global _WORKER_STATE
    if payload is not None:
        graph, functional, seed, static_filter, estimator = payload
        _WORKER_STATE = {
            "graph": graph,
            "functional": functional,
            "seed": seed,
            "static_filter": static_filter,
            "estimator": estimator,
            "pipeline": BuildPipeline(),
        }


def _evaluate_chunk(
        chunk: list[tuple[int, SweepPoint]]) -> list[tuple[int, PointResult]]:
    """Process-pool entry point: evaluate one chunk of indexed points."""
    state = _WORKER_STATE
    if state is None:
        raise RuntimeError("sweep worker was not primed")
    return [
        (index, evaluate_point(state["graph"], point,
                               functional=state["functional"],
                               seed=state["seed"],
                               static_filter=state["static_filter"],
                               pipeline=state["pipeline"],
                               estimator=state.get("estimator", "exact")))
        for index, point in chunk
    ]


def _chunked(items: list, parts: int) -> list[list]:
    """At most ``parts`` contiguous, near-equal chunks (order kept)."""
    size = -(-len(items) // parts)
    return [items[i:i + size] for i in range(0, len(items), size)]


def _design_group_key(pipe: BuildPipeline, graph: NetworkGraph, fp: str,
                      point: SweepPoint, memo: dict) -> str:
    """The content address of the realized design ``point`` maps to.

    Every canonical :class:`PointResult` field is a function of the
    realized design plus the sweep-wide (functional, seed,
    static_filter, estimator) settings, so points sharing this key
    share one evaluation.  ``memo`` holds per-sweep lookaside tables
    (budget, datapath config, design key) so a thousand-point grid
    pays the hashing once per *distinct* configuration, not per point.
    Points that fail before design realisation group only with exact
    duplicates (their error text may mention any raw knob).
    """
    try:
        NNGen.validate_knobs(max_lanes=point.max_lanes,
                             max_simd=point.max_simd,
                             fold_capacity_scale=point.fold_capacity_scale)
        budgets = memo.setdefault("budget", {})
        budget_key = (point.device, point.fraction)
        budget = budgets.get(budget_key)
        if budget is None:
            budget = budget_fraction(device_by_name(point.device),
                                     point.fraction)
            budgets[budget_key] = budget
        configs = memo.setdefault("config", {})
        config_key = (point.device, point.fraction, point.data_bits,
                      point.weight_bits)
        config = configs.get(config_key)
        if config is None:
            config, _ = pipe.datapath(graph, fp, budget, point.data_format,
                                      point.weight_format)
            configs[config_key] = config
        config = NNGen.apply_caps(config, point.max_lanes, point.max_simd)
        keys = memo.setdefault("key", {})
        effective = (config_key, config.lanes, config.simd,
                     point.fold_capacity_scale)
        key = keys.get(effective)
        if key is None:
            key = "design:" + pipe.design_key(fp, budget, config,
                                              point.fold_capacity_scale)
            keys[effective] = key
        return key
    except DeepBurningError:
        return "point:" + repr(point)


def _prime_parent(pipe: BuildPipeline, graph: NetworkGraph, fp: str,
                  reps: list[tuple[int, SweepPoint]],
                  spec: SweepSpec) -> None:
    """Populate the weight stages every worker needs before forking.

    Fork-started children then inherit initialized and quantized
    weights copy-on-write instead of rebuilding them once per process.
    A failure is deliberately swallowed: the workers hit it again and
    report it as structured infeasible results, exactly like a serial
    sweep.
    """
    pipe.shapes(graph, fp)
    if not spec.functional:
        return
    try:
        weights, _ = pipe.weights(graph, fp, spec.seed)
        for bits in {point.weight_bits for _, point in reps}:
            pipe.quantized_weights(graph, fp, spec.seed, weights,
                                   QFormat(*bits))
    except DeepBurningError:
        pass


def run_sweep(graph: NetworkGraph, spec: SweepSpec, jobs: int = 1,
              cache: DesignCache | None = None,
              pipeline: BuildPipeline | None = None,
              use_pool: bool | None = None,
              estimator: str = "exact") -> SweepResult:
    """Evaluate every point of ``spec``, in parallel when ``jobs > 1``.

    Results keep the spec's point order, so a parallel sweep equals a
    serial one row for row.  Persistent-cache hits skip evaluation
    before any worker spawns; exact duplicates and points collapsing
    onto one realized design are evaluated once and their results
    replicated (``deduped`` / ``design_shared`` in the outcome); fresh
    results are written back before the sweep returns.

    ``estimator`` selects the evaluator: ``"exact"`` compiles and
    event-simulates every design; ``"analytic"`` scores the closed-form
    model on bare designs (no compile, no weights — 10-100x cheaper per
    fresh design group); ``"hybrid"`` sweeps analytically and then
    replays the Pareto frontier plus the knee neighborhood through the
    exact simulator, so the reported frontier is simulator-accurate.

    ``use_pool=None`` (the default) clamps worker processes to the
    machine's cores — surplus ``jobs`` degrade to in-process evaluation
    instead of paying fork-and-pickle overhead for no parallelism.
    ``True`` forces the pool protocol (tests), ``False`` forces serial;
    either way the results are bit-identical.
    """
    if jobs < 1:
        raise DeepBurningError(f"jobs must be >= 1, got {jobs}")
    _check_estimator(estimator, spec.functional, spec.static_filter)
    started = time.perf_counter()
    pipe = pipeline or default_pipeline()
    if estimator == "hybrid":
        return _run_hybrid(graph, spec, jobs=jobs, cache=cache, pipe=pipe,
                           use_pool=use_pool, started=started)
    points = spec.points()
    # Snapshot so a reused cache object reports per-sweep stats.  (The
    # cache defines __len__, so compare against None, never truthiness.)
    hits_before = cache.stats.hits if cache is not None else 0
    misses_before = cache.stats.misses if cache is not None else 0
    fingerprint = pipe.fingerprint(graph)
    results: dict[int, PointResult] = {}
    pending: list[tuple[int, SweepPoint]] = []
    keys: dict[int, str] = {}
    first_of: dict[SweepPoint, int] = {}
    duplicates: dict[int, int] = {}
    for index, point in enumerate(points):
        if cache is not None:
            key = DesignCache.key(fingerprint, point,
                                  functional=spec.functional, seed=spec.seed,
                                  static_filter=spec.static_filter,
                                  estimator=estimator)
            keys[index] = key
            hit = cache.load(key)
            if hit is not None:
                results[index] = hit
                continue
        first = first_of.get(point)
        if first is not None:
            duplicates[index] = first
            continue
        first_of[point] = index
        pending.append((index, point))

    # Collapse pending points onto their realized-design groups: one
    # representative evaluates, the rest share its canonical result.
    pending_points = dict(pending)
    group_memo: dict = {}
    group_rep: dict[str, int] = {}
    member_of: dict[int, int] = {}
    rep_indices: list[int] = []
    for index, point in pending:
        gkey = _design_group_key(pipe, graph, fingerprint, point,
                                 group_memo)
        rep = group_rep.get(gkey)
        if rep is None:
            group_rep[gkey] = index
            rep_indices.append(index)
        else:
            member_of[index] = rep

    reps = [(index, pending_points[index]) for index in rep_indices]
    # Size the stage LRU to the sweep's working set so a warm re-sweep
    # actually hits (the default 32-entry bound thrashes on wide grids).
    pipe.cache.reserve(2 * len(reps))
    workers = min(jobs, len(reps))
    if use_pool is None:
        workers = min(workers, os.cpu_count() or 1)
        pooled = workers > 1
    else:
        pooled = use_pool and workers > 1
    if pooled:
        _prime_parent(pipe, graph, fingerprint, reps, spec)
        global _WORKER_STATE
        pool_kwargs: dict = {}
        if multiprocessing.get_start_method() == "fork":
            _WORKER_STATE = {
                "graph": graph, "functional": spec.functional,
                "seed": spec.seed, "static_filter": spec.static_filter,
                "estimator": estimator, "pipeline": pipe,
            }
        else:
            pool_kwargs = {
                "initializer": _prime_worker,
                "initargs": ((graph, spec.functional, spec.seed,
                              spec.static_filter, estimator),),
            }
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     **pool_kwargs) as pool:
                for chunk in pool.map(_evaluate_chunk,
                                      _chunked(reps, workers)):
                    for index, result in chunk:
                        results[index] = result
        finally:
            _WORKER_STATE = None
    else:
        for index, point in reps:
            results[index] = evaluate_point(
                graph, point, functional=spec.functional, seed=spec.seed,
                static_filter=spec.static_filter, pipeline=pipe,
                estimator=estimator)

    # Fan shared evaluations back out.  Canonical fields are identical
    # by construction; stage timings are zeroed because shared points
    # cost nothing to build.
    for index, rep in member_of.items():
        results[index] = replace(results[rep],
                                 point=pending_points[index], stage_s={})
    for index, first in duplicates.items():
        results[index] = replace(results[first], stage_s={})

    if cache is not None:
        for index, _ in pending:
            cache.store(keys[index], results[index])

    return SweepResult(
        results=[results[index] for index in range(len(points))],
        cache_hits=(cache.stats.hits - hits_before)
        if cache is not None else 0,
        cache_misses=(cache.stats.misses - misses_before)
        if cache is not None else len(pending),
        elapsed_s=time.perf_counter() - started,
        jobs=jobs,
        deduped=len(duplicates),
        design_shared=len(member_of),
        estimator=estimator,
    )


def _run_hybrid(graph: NetworkGraph, spec: SweepSpec, jobs: int,
                cache: DesignCache | None, pipe: BuildPipeline,
                use_pool: bool | None, started: float) -> SweepResult:
    """Analytic wide sweep, exact replay of the frontier + knee region.

    The full grid is scored by the closed-form estimator; only the
    Pareto frontier and the knee's nearest feasible neighbors — the
    points a designer would actually pick — are re-evaluated through
    the compile→simulate flow (honoring ``spec.functional``).  The
    final frontier is recomputed over the spliced results, so every
    reported frontier point carries simulator-exact figures.
    """
    analytic_spec = replace(spec, functional=False)
    analytic = run_sweep(graph, analytic_spec, jobs=jobs, cache=cache,
                         pipeline=pipe, use_pool=use_pool,
                         estimator="analytic")
    results = list(analytic.results)
    frontier = pareto_frontier(results)
    knee = frontier_knee(frontier)
    on_frontier = {id(r) for r in frontier}
    off_frontier = [r for r in results
                    if r.feasible and id(r) not in on_frontier]
    neighborhood = knee_neighborhood(off_frontier, knee)
    index_of = {id(result): index for index, result in enumerate(results)}
    replay = sorted(index_of[id(r)] for r in frontier + neighborhood)

    fingerprint = pipe.fingerprint(graph)
    hits = analytic.cache_hits
    misses = analytic.cache_misses
    # Replayed points sharing one realized design simulate once — the
    # same sharing the exact sweep applies — and the representative's
    # canonical result is replicated under each member's point.
    group_memo: dict = {}
    group_result: dict[str, PointResult] = {}
    for index in replay:
        point = results[index].point
        key = None
        if cache is not None:
            key = DesignCache.key(fingerprint, point,
                                  functional=spec.functional, seed=spec.seed,
                                  estimator="exact")
            hit = cache.load(key)
            if hit is not None:
                results[index] = hit
                hits += 1
                continue
            misses += 1
        gkey = _design_group_key(pipe, graph, fingerprint, point, group_memo)
        shared = group_result.get(gkey)
        if shared is not None:
            results[index] = replace(shared, point=point, stage_s={})
        else:
            results[index] = evaluate_point(
                graph, point, functional=spec.functional, seed=spec.seed,
                pipeline=pipe, estimator="exact")
            group_result[gkey] = results[index]
        if cache is not None and key is not None:
            cache.store(key, results[index])

    return SweepResult(
        results=results,
        cache_hits=hits,
        cache_misses=misses,
        elapsed_s=time.perf_counter() - started,
        jobs=jobs,
        deduped=analytic.deduped,
        design_shared=analytic.design_shared,
        estimator="hybrid",
        replayed=len(replay),
    )
