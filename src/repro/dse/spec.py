"""Declarative sweep specifications.

A :class:`SweepSpec` names the axes of a design-space exploration —
budget fractions, fixed-point formats, datapath caps and fold-depth
scales — and enumerates their cartesian product as concrete
:class:`SweepPoint` s in a deterministic order.  Each point carries only
plain values (strings, ints, floats) so it can be hashed into a cache
key, pickled to a worker process, and serialized into a report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.devices.device import device_by_name
from repro.errors import DeepBurningError
from repro.fixedpoint.format import (
    DEFAULT_DATA_FORMAT,
    DEFAULT_WEIGHT_FORMAT,
    QFormat,
)

#: (integer_bits, fraction_bits) defaults, mirrored from the fixed-point
#: package so a sweep point is pure plain data.
DEFAULT_DATA_BITS = (DEFAULT_DATA_FORMAT.integer_bits,
                     DEFAULT_DATA_FORMAT.fraction_bits)
DEFAULT_WEIGHT_BITS = (DEFAULT_WEIGHT_FORMAT.integer_bits,
                       DEFAULT_WEIGHT_FORMAT.fraction_bits)


def parse_qformat(text: str) -> tuple[int, int]:
    """Parse a ``Qm.n`` / ``m.n`` format spec into ``(m, n)``."""
    cleaned = text.strip().lstrip("qQ")
    parts = cleaned.split(".")
    if len(parts) != 2:
        raise DeepBurningError(
            f"bad fixed-point format '{text}': expected 'm.n' or 'Qm.n'"
        )
    try:
        integer_bits, fraction_bits = int(parts[0]), int(parts[1])
    except ValueError:
        raise DeepBurningError(
            f"bad fixed-point format '{text}': fields must be integers"
        ) from None
    QFormat(integer_bits, fraction_bits)  # validates widths
    return integer_bits, fraction_bits


@dataclass(frozen=True)
class SweepPoint:
    """One candidate configuration of the generate→compile→simulate flow."""

    device: str = "Z-7045"
    fraction: float = 0.3
    #: ``(integer_bits, fraction_bits)`` of the feature datapath.
    data_bits: tuple[int, int] = DEFAULT_DATA_BITS
    #: ``(integer_bits, fraction_bits)`` of the weight storage.
    weight_bits: tuple[int, int] = DEFAULT_WEIGHT_BITS
    #: Datapath caps handed to NN-Gen (0 = let the budget decide).
    max_lanes: int = 0
    max_simd: int = 0
    #: Fold-depth knob in (0, 1]: scales the buffer capacity the folding
    #: planner may use, forcing deeper folding below 1.0.
    fold_capacity_scale: float = 1.0

    def __post_init__(self) -> None:
        device_by_name(self.device)  # raises on unknown devices
        if not 0.0 < self.fraction <= 1.0:
            raise DeepBurningError(
                f"sweep fraction {self.fraction} must be in (0, 1]"
            )

    @property
    def data_format(self) -> QFormat:
        return QFormat(*self.data_bits)

    @property
    def weight_format(self) -> QFormat:
        return QFormat(*self.weight_bits)

    def params(self) -> dict[str, object]:
        """Plain-data view: the cache-key and JSON representation."""
        return {
            "device": self.device,
            "fraction": self.fraction,
            "data_bits": list(self.data_bits),
            "weight_bits": list(self.weight_bits),
            "max_lanes": self.max_lanes,
            "max_simd": self.max_simd,
            "fold_capacity_scale": self.fold_capacity_scale,
        }

    @staticmethod
    def from_params(params: dict[str, object]) -> "SweepPoint":
        return SweepPoint(
            device=str(params["device"]),
            fraction=float(params["fraction"]),
            data_bits=tuple(params["data_bits"]),
            weight_bits=tuple(params["weight_bits"]),
            max_lanes=int(params["max_lanes"]),
            max_simd=int(params["max_simd"]),
            fold_capacity_scale=float(params["fold_capacity_scale"]),
        )

    @property
    def label(self) -> str:
        """Compact table label, non-default axes only."""
        parts = [f"{self.fraction:.0%}"]
        if self.data_bits != DEFAULT_DATA_BITS:
            parts.append(f"d=Q{self.data_bits[0]}.{self.data_bits[1]}")
        if self.weight_bits != DEFAULT_WEIGHT_BITS:
            parts.append(f"w=Q{self.weight_bits[0]}.{self.weight_bits[1]}")
        if self.max_lanes:
            parts.append(f"lanes<={self.max_lanes}")
        if self.max_simd:
            parts.append(f"simd<={self.max_simd}")
        if self.fold_capacity_scale != 1.0:
            parts.append(f"fold@{self.fold_capacity_scale:g}")
        return " ".join(parts)


#: Default budget ladder: eight fractions spanning the Table 3 range.
DEFAULT_FRACTIONS = (0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40, 0.80)


@dataclass(frozen=True)
class SweepSpec:
    """The declarative axes of one exploration run."""

    device: str = "Z-7045"
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS
    data_formats: tuple[tuple[int, int], ...] = (DEFAULT_DATA_BITS,)
    weight_formats: tuple[tuple[int, int], ...] = (DEFAULT_WEIGHT_BITS,)
    max_lanes: tuple[int, ...] = (0,)
    max_simd: tuple[int, ...] = (0,)
    fold_capacity_scales: tuple[float, ...] = (1.0,)
    #: When True, each point also runs the bit-level functional
    #: simulation against the float reference and records fidelity.
    functional: bool = False
    #: When True, each built design runs the static verifier first and
    #: points with error-severity findings are rejected unsimulated.
    static_filter: bool = False
    #: Seed for the random weights/input of functional evaluation.
    seed: int = 0
    _points: tuple[SweepPoint, ...] = field(default=(), repr=False)

    def points(self) -> list[SweepPoint]:
        """Enumerate candidate points, deterministically ordered."""
        if self._points:
            return list(self._points)
        return [
            SweepPoint(
                device=self.device,
                fraction=fraction,
                data_bits=tuple(data_bits),
                weight_bits=tuple(weight_bits),
                max_lanes=lanes,
                max_simd=simd,
                fold_capacity_scale=scale,
            )
            for fraction, data_bits, weight_bits, lanes, simd, scale
            in itertools.product(
                self.fractions, self.data_formats, self.weight_formats,
                self.max_lanes, self.max_simd, self.fold_capacity_scales,
            )
        ]

    @staticmethod
    def explicit(points: list[SweepPoint], functional: bool = False,
                 static_filter: bool = False, seed: int = 0) -> "SweepSpec":
        """A spec over a hand-picked point list instead of a product."""
        return SweepSpec(functional=functional, static_filter=static_filter,
                         seed=seed, _points=tuple(points))
