"""Design-space exploration over the generate→compile→simulate flow.

The paper's NN-Gen answers *one* resource constraint with *one*
accelerator; this package turns that into the autotuner workflow the
paper motivates in §1: declare the axes of interest
(:class:`~repro.dse.spec.SweepSpec`), evaluate every candidate point —
across worker processes, with a persistent content-addressed design
cache (:class:`~repro.dse.cache.DesignCache`) — and read the
latency-vs-resource Pareto frontier off the result
(:class:`~repro.dse.result.SweepResult`).

Typical use::

    spec = SweepSpec(device="Z-7045", fractions=(0.05, 0.1, 0.2, 0.4))
    cache = DesignCache(default_cache_dir())
    sweep = run_sweep(graph, spec, jobs=4, cache=cache)
    print(sweep.render())

or from the command line: ``repro dse --script net.prototxt --jobs 4``.
"""

from repro.dse.bench import DseBenchReport, run_dse_bench, widen_spec
from repro.dse.cache import CacheStats, DesignCache, default_cache_dir
from repro.dse.engine import ESTIMATORS, evaluate_point, run_sweep
from repro.dse.result import (
    PointResult,
    SweepResult,
    frontier_knee,
    knee_neighborhood,
    pareto_frontier,
)
from repro.dse.spec import SweepPoint, SweepSpec, parse_qformat

__all__ = [
    "CacheStats",
    "DesignCache",
    "DseBenchReport",
    "ESTIMATORS",
    "PointResult",
    "SweepPoint",
    "SweepSpec",
    "SweepResult",
    "default_cache_dir",
    "evaluate_point",
    "frontier_knee",
    "knee_neighborhood",
    "pareto_frontier",
    "parse_qformat",
    "run_dse_bench",
    "run_sweep",
    "widen_spec",
]
