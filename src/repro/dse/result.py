"""Result model of a design-space exploration.

Every evaluated :class:`~repro.dse.spec.SweepPoint` yields a
:class:`PointResult` — including infeasible points, which record the
failure reason instead of aborting the sweep.  A :class:`SweepResult`
aggregates them, computes the latency-vs-resource Pareto frontier and
renders the report table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.dse.spec import SweepPoint
from repro.experiments.report import format_energy, format_time, render_table

#: Result schema version, bumped whenever the JSON layout changes so a
#: stale cache entry is treated as a miss rather than misread.
#: 2: ``estimator`` provenance field (exact | analytic).
RESULT_SCHEMA = 2


@dataclass(frozen=True)
class PointResult:
    """Outcome of evaluating one sweep point."""

    point: SweepPoint
    status: str  # "ok" | "infeasible" | "rejected" (static verifier)
    reason: str = ""
    # Design shape
    lanes: int = 0
    simd: int = 0
    folds: int = 0
    # Resource bill
    dsp: int = 0
    lut: int = 0
    ff: int = 0
    bram_bits: int = 0
    # Timing / energy
    cycles: int = 0
    time_s: float = 0.0
    energy_j: float = 0.0
    power_w: float = 0.0
    macs: int = 0
    #: Output fidelity vs the float reference in [0, 1]; None when the
    #: sweep ran timing-only.
    accuracy: float | None = None
    #: Which evaluator produced the timing/energy figures: ``"exact"``
    #: (event simulator) or ``"analytic"`` (closed-form estimator).  A
    #: hybrid sweep's replayed frontier points read ``"exact"``.
    estimator: str = "exact"
    #: True when this result came out of the design cache.
    cached: bool = False
    #: Where the evaluation's time went: ``build_s`` total plus the
    #: ``nngen_s``/``quantize_s``/``compile_s``/``plan_s`` build split
    #: and the ``estimate_s``/``simulate_s`` evaluation split (0.0 for
    #: pipeline-memoized stages, empty for cached or shared results).
    #: Diagnostic only — excluded from equality, JSON and the design
    #: cache so cold/warm/serial/parallel sweeps stay byte-identical.
    stage_s: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def feasible(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        return {
            "schema": RESULT_SCHEMA,
            "point": self.point.params(),
            "status": self.status,
            "reason": self.reason,
            "lanes": self.lanes,
            "simd": self.simd,
            "folds": self.folds,
            "dsp": self.dsp,
            "lut": self.lut,
            "ff": self.ff,
            "bram_bits": self.bram_bits,
            "cycles": self.cycles,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "power_w": self.power_w,
            "macs": self.macs,
            "accuracy": self.accuracy,
            "estimator": self.estimator,
        }

    @staticmethod
    def from_json(data: dict, cached: bool = False) -> "PointResult":
        return PointResult(
            point=SweepPoint.from_params(data["point"]),
            status=str(data["status"]),
            reason=str(data["reason"]),
            lanes=int(data["lanes"]),
            simd=int(data["simd"]),
            folds=int(data["folds"]),
            dsp=int(data["dsp"]),
            lut=int(data["lut"]),
            ff=int(data["ff"]),
            bram_bits=int(data["bram_bits"]),
            cycles=int(data["cycles"]),
            time_s=float(data["time_s"]),
            energy_j=float(data["energy_j"]),
            power_w=float(data["power_w"]),
            macs=int(data["macs"]),
            accuracy=(None if data.get("accuracy") is None
                      else float(data["accuracy"])),
            estimator=str(data.get("estimator", "exact")),
            cached=cached,
        )

    def as_cached(self) -> "PointResult":
        return replace(self, cached=True)


def pareto_frontier(
    results: Sequence[PointResult],
    latency: Callable[[PointResult], float] = lambda r: r.time_s,
    resource: Callable[[PointResult], float] = lambda r: r.lut,
) -> list[PointResult]:
    """Non-dominated feasible points, minimizing latency and resource.

    A point is dominated when another feasible point is no worse on both
    axes and strictly better on at least one.  The frontier is returned
    sorted by rising resource (so latency falls along it), with the
    point label as a stable secondary key so coordinate ties resolve
    the same way regardless of input order.
    """
    feasible = [r for r in results if r.feasible]
    # Plane sweep by rising (resource, latency, label): a point joins
    # the staircase iff it is strictly faster than everything cheaper
    # or equal in resource.  Equivalent to the quadratic all-pairs
    # dominance check (plus its coordinate-tie dedupe, which the sort's
    # label key resolves order-independently), but O(n log n) — wide
    # analytic sweeps hand this thousands of points.
    feasible.sort(key=lambda r: (resource(r), latency(r), r.point.label))
    frontier: list[PointResult] = []
    best_latency = float("inf")
    for result in feasible:
        if latency(result) < best_latency:
            frontier.append(result)
            best_latency = latency(result)
    return frontier


def frontier_knee(
    frontier: Sequence[PointResult],
    latency: Callable[[PointResult], float] = lambda r: r.time_s,
    resource: Callable[[PointResult], float] = lambda r: r.lut,
) -> PointResult | None:
    """The balanced point: nearest to the origin in normalized axes.

    Distance ties resolve on the point label, so analytic and exact
    sweeps over equal frontiers always report the same knee.
    """
    if not frontier:
        return None
    lat = [latency(r) for r in frontier]
    res = [resource(r) for r in frontier]
    lat_span = max(lat) - min(lat) or 1.0
    res_span = max(res) - min(res) or 1.0
    best = None
    best_rank: tuple[float, str] = (float("inf"), "")
    for result, l, c in zip(frontier, lat, res):
        distance = (((l - min(lat)) / lat_span) ** 2
                    + ((c - min(res)) / res_span) ** 2) ** 0.5
        rank = (distance, result.point.label)
        if rank < best_rank:
            best, best_rank = result, rank
    return best


def knee_neighborhood(
    results: Sequence[PointResult],
    knee: PointResult | None,
    count: int = 2,
    latency: Callable[[PointResult], float] = lambda r: r.time_s,
    resource: Callable[[PointResult], float] = lambda r: r.lut,
) -> list[PointResult]:
    """The ``count`` feasible points nearest the knee, knee excluded.

    Distances are measured in axes normalized over the feasible span
    (the same scaling the knee selection uses) and ties resolve on the
    point label, so the neighborhood is deterministic.  A hybrid sweep
    replays these alongside the frontier: the near-optimal region stays
    simulator-accurate even when a point sits just off the analytic
    frontier.
    """
    if knee is None:
        return []
    feasible = [r for r in results if r.feasible and r is not knee]
    if not feasible:
        return []
    lat = [latency(r) for r in feasible] + [latency(knee)]
    res = [resource(r) for r in feasible] + [resource(knee)]
    lat_span = max(lat) - min(lat) or 1.0
    res_span = max(res) - min(res) or 1.0
    ranked = sorted(
        feasible,
        key=lambda r: (
            (((latency(r) - latency(knee)) / lat_span) ** 2
             + ((resource(r) - resource(knee)) / res_span) ** 2) ** 0.5,
            r.point.label,
        ),
    )
    return ranked[:max(0, count)]


@dataclass
class SweepResult:
    """Aggregate outcome of one exploration run."""

    results: list[PointResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1
    #: Points skipped because an identical point appeared earlier in the
    #: same sweep (the duplicate reuses the first evaluation's result).
    deduped: int = 0
    #: Points that collapsed onto an already-evaluated realized design
    #: (same effective datapath under this budget) and shared its
    #: canonical metrics instead of rebuilding.
    design_shared: int = 0
    #: Which evaluator the sweep ran: "exact", "analytic" or "hybrid".
    estimator: str = "exact"
    #: Hybrid only: points re-evaluated through the exact simulator
    #: (the Pareto frontier plus the knee neighborhood).
    replayed: int = 0

    @property
    def feasible(self) -> list[PointResult]:
        return [r for r in self.results if r.feasible]

    @property
    def infeasible(self) -> list[PointResult]:
        return [r for r in self.results if not r.feasible]

    @property
    def rejected(self) -> list[PointResult]:
        """Points the static verifier filtered out before simulation."""
        return [r for r in self.results if r.status == "rejected"]

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def frontier(self) -> list[PointResult]:
        return pareto_frontier(self.results)

    def knee(self) -> PointResult | None:
        return frontier_knee(self.frontier())

    def cache_summary(self) -> str:
        total = self.cache_hits + self.cache_misses
        summary = (f"cache: {self.cache_hits} hits, {self.cache_misses} "
                   f"misses ({self.cache_hit_rate:.0%} of {total} points)")
        if self.deduped or self.design_shared:
            summary += (f"; {self.deduped} duplicate points deduped, "
                        f"{self.design_shared} shared a realized design")
        return summary

    def stage_split(self) -> dict[str, float]:
        """Total seconds spent per stage across evaluated points.

        Memoized stages contribute 0.0 and cached/shared results carry
        no timings, so the split shows exactly where fresh work went —
        including the ``estimate_s``/``simulate_s`` evaluation split
        that tells a hybrid sweep's analytic time from its replay time.
        """
        split = {"build_s": 0.0, "nngen_s": 0.0, "quantize_s": 0.0,
                 "compile_s": 0.0, "plan_s": 0.0, "estimate_s": 0.0,
                 "simulate_s": 0.0}
        for result in self.results:
            for stage, seconds in result.stage_s.items():
                split[stage] = split.get(stage, 0.0) + seconds
        return split

    def stage_summary(self) -> str:
        split = self.stage_split()
        detail = " ".join(
            f"{stage.removesuffix('_s')} {split[stage]:.3f}s"
            for stage in ("nngen_s", "quantize_s", "compile_s", "plan_s"))
        evaluate = " ".join(
            f"{stage.removesuffix('_s')} {split[stage]:.3f}s"
            for stage in ("estimate_s", "simulate_s"))
        return (f"build stages: {split['build_s']:.3f}s total ({detail}); "
                f"evaluation: {evaluate}")

    def render(self, title: str = "design space") -> str:
        """The report table plus cache and frontier summaries."""
        frontier = self.frontier()
        on_frontier = {id(r) for r in frontier}
        headers = ["point", "status", "lanes x simd", "folds", "DSP",
                   "LUT", "time", "energy", "power", "pareto"]
        has_accuracy = any(r.accuracy is not None for r in self.results)
        if has_accuracy:
            headers.insert(9, "fidelity")
        has_stages = any(r.stage_s for r in self.results)
        if has_stages:
            headers.insert(9, "build")
        rows = []
        for result in self.results:
            if result.feasible:
                row = [
                    result.point.label,
                    "ok" + (" (cached)" if result.cached else ""),
                    f"{result.lanes}x{result.simd}",
                    result.folds,
                    result.dsp,
                    result.lut,
                    format_time(result.time_s),
                    format_energy(result.energy_j),
                    f"{result.power_w:.2f}W",
                ]
                if has_stages:
                    if result.cached:
                        row.append("-")
                    elif not result.stage_s:
                        row.append("shared")
                    else:
                        row.append(
                            f"{result.stage_s.get('build_s', 0.0):.3f}s")
                if has_accuracy:
                    row.append("-" if result.accuracy is None
                               else f"{result.accuracy:.3f}")
                row.append("*" if id(result) in on_frontier else "")
            else:
                row = [result.point.label, result.status, "-", "-", "-", "-",
                       "-", "-", "-"]
                if has_stages:
                    row.append("-")
                if has_accuracy:
                    row.append("-")
                row.append("")
            rows.append(row)
        lines = [render_table(headers, rows, title=title)]
        if self.estimator != "exact":
            note = f"estimator: {self.estimator}"
            if self.estimator == "hybrid":
                note += (f" ({self.replayed} frontier/knee points replayed "
                         "through the exact simulator)")
            lines.append(note)
        lines.append(self.cache_summary())
        if has_stages:
            lines.append(self.stage_summary())
        knee = self.knee()
        if knee is not None:
            lines.append(
                f"frontier: {len(frontier)} of {len(self.feasible)} feasible "
                f"points; knee at {knee.point.label} "
                f"({format_time(knee.time_s)}, {knee.lut} LUT)"
            )
        rejected = self.rejected
        if rejected:
            lines.append(f"static filter: {len(rejected)} points rejected "
                         "before simulation (see status column)")
        plain_infeasible = len(self.infeasible) - len(rejected)
        if plain_infeasible:
            lines.append(f"infeasible: {plain_infeasible} points "
                         "(see status column)")
        return "\n".join(lines)
