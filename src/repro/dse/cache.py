"""Persistent, content-addressed design cache.

Every evaluated sweep point is stored as one JSON file under the cache
directory, keyed by a SHA-256 over the network fingerprint
(:meth:`~repro.frontend.graph.NetworkGraph.fingerprint`), the point
parameters and the evaluation mode.  Repeated sweeps — and overlapping
points across different sweeps of the same network — skip the whole
generate→compile→simulate pipeline.  Corrupt or stale-schema entries
are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass

from repro.dse.result import RESULT_SCHEMA, PointResult
from repro.dse.spec import SweepPoint

#: Default cache location; override with $REPRO_CACHE_DIR or --cache-dir.
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro", "dse")


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") \
        or os.path.expanduser(DEFAULT_CACHE_DIR)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class DesignCache:
    """One directory of cached point evaluations."""

    def __init__(self, root: str) -> None:
        self.root = os.path.expanduser(root)
        self.stats = CacheStats()

    # --- keys ----------------------------------------------------------

    @staticmethod
    def key(fingerprint: str, point: SweepPoint,
            functional: bool = False, seed: int = 0,
            static_filter: bool = False, estimator: str = "exact") -> str:
        """Content address of one evaluation.

        ``functional``/``seed`` are part of the key because a functional
        run carries a fidelity figure a timing-only run lacks.
        ``static_filter`` and a non-exact ``estimator`` join the record
        only when set, so caches written before those modes existed
        stay valid for plain exact sweeps.
        """
        record = {
            "schema": RESULT_SCHEMA,
            "fingerprint": fingerprint,
            "point": point.params(),
            "functional": functional,
            "seed": seed if functional else 0,
        }
        if static_filter:
            record["static_filter"] = True
        if estimator != "exact":
            record["estimator"] = estimator
        canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # --- operations ----------------------------------------------------

    def load(self, key: str) -> PointResult | None:
        """Return the cached result, counting a hit or a miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") != RESULT_SCHEMA:
                raise ValueError("stale schema")
            result = PointResult.from_json(data, cached=True)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, key: str, result: PointResult) -> str:
        """Atomically write one result; concurrent writers are safe."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result.to_json(), handle, indent=1)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.root)
                       if name.endswith(".json"))
        except OSError:
            return 0
