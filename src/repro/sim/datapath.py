"""Per-fold datapath timing.

Compute beats of one fold on the shared data-driven datapath: the
functional blocks on the fold's route each contribute their beat count;
MAC-dominated folds are bounded by the synergy-neuron array, streaming
folds by the slowest block they traverse, plus a pipeline fill/drain of
a few cycles per block.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.frontend.layers import LayerKind
from repro.nngen.design import AcceleratorDesign, FoldPhase

#: Pipeline registers each routed block adds (fill + drain).
PIPELINE_FILL_PER_BLOCK = 3


def compute_beats(design: AcceleratorDesign, phase: FoldPhase) -> int:
    """Clock cycles the datapath spends computing one fold."""
    kind = phase.kind
    neurons = design.components.get("neurons")

    if kind in (LayerKind.CONVOLUTION, LayerKind.DEPTHWISE_CONVOLUTION,
                LayerKind.INNER_PRODUCT, LayerKind.RECURRENT,
                LayerKind.ASSOCIATIVE, LayerKind.INCEPTION):
        if neurons is None:
            raise SimulationError("design has no synergy-neuron array")
        beats = neurons.beats_for(phase.macs_per_output, phase.out_count)
        # Activation of the produced outputs rides the same pipeline for
        # ReLU; LUT-backed activations serialise through the shared table.
        activation = design.components.get("activation")
        if activation is not None and activation.needs_lut and not phase.partial:
            beats += activation.beats_for(phase.out_count, "sigmoid")
        return beats + 2 * PIPELINE_FILL_PER_BLOCK

    if kind is LayerKind.POOLING:
        pool = design.components.get("pooling")
        if pool is None:
            raise SimulationError("design has no pooling unit")
        kernel = max(1, int(round(phase.macs_per_output ** 0.5)))
        return pool.beats_for(phase.out_count, kernel) + PIPELINE_FILL_PER_BLOCK

    if kind is LayerKind.LRN:
        lrn = design.components.get("lrn")
        if lrn is None:
            raise SimulationError("design has no LRN unit")
        return lrn.beats_for(phase.out_count) + PIPELINE_FILL_PER_BLOCK

    if kind is LayerKind.DROPOUT:
        dropout = design.components.get("dropout")
        if dropout is None:
            return phase.out_count
        return dropout.beats_for(phase.out_count) + PIPELINE_FILL_PER_BLOCK

    if kind in (LayerKind.RELU, LayerKind.SIGMOID, LayerKind.TANH):
        activation = design.components.get("activation")
        if activation is None:
            raise SimulationError("design has no activation unit")
        function = {"RELU": "relu", "SIGMOID": "sigmoid",
                    "TANH": "tanh"}[kind.value]
        return (activation.beats_for(phase.out_count, function)
                + PIPELINE_FILL_PER_BLOCK)

    if kind in (LayerKind.SOFTMAX, LayerKind.CLASSIFIER):
        classifier = design.components.get("classifier")
        if classifier is not None:
            return classifier.beats_for(phase.in_count or phase.out_count) \
                + PIPELINE_FILL_PER_BLOCK
        return phase.out_count + PIPELINE_FILL_PER_BLOCK

    if kind is LayerKind.CONCAT:
        return phase.out_count + PIPELINE_FILL_PER_BLOCK

    if kind is LayerKind.ELTWISE:
        # One accumulator pass per input branch, one beat per element.
        branches = max(1, phase.macs_per_output)
        return phase.out_count * branches + PIPELINE_FILL_PER_BLOCK

    raise SimulationError(f"no datapath timing rule for {kind}")


def buffer_stream_beats(design: AcceleratorDesign, phase: FoldPhase) -> int:
    """Cycles the data/weight AGUs need to stream the fold's operands.

    The feature port delivers ``simd`` words per beat and the weight port
    ``lanes * simd`` words per beat (Method-1 alignment), so on a MAC
    fold operand streaming never outruns compute — but on streaming folds
    it can dominate.
    """
    simd = design.datapath.simd
    lanes = design.datapath.lanes
    feature_beats = -(-phase.input_words // simd)
    weight_beats = -(-phase.weight_words // (lanes * simd)) \
        if phase.weight_words else 0
    return max(feature_beats, weight_beats)
