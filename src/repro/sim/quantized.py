"""Bit-level functional execution of the generated accelerator.

Computes exactly what the fixed-point datapath computes: features and
weights quantized to their compiled formats, dot products accumulated in
wide integers, the connection box's shifting latch for power-of-two
division, the Approx LUT for sigmoid/tanh/LRN scaling.  Output deviation
from the float :class:`~repro.nn.reference.ReferenceNetwork` is the
accuracy loss Fig. 10 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.compiler.lut import ApproxLUTContent, build_lut, \
    lut_range_for_activation
from repro.compiler.program import ControlProgram
from repro.errors import SimulationError
from repro.fixedpoint.format import QFormat
from repro.fixedpoint.ops import (
    accumulator_format,
    dequantize,
    quantize_to_ints,
    requantize,
)
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind, LayerSpec, PoolMethod
from repro.frontend.shapes import conv_groups, infer_shapes
from repro.nn import functional as F
from repro.sim.plan import ExecutionPlan


def _is_power_of_two(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


@dataclass
class QuantizedExecutor:
    """Executes a network in the accelerator's fixed-point arithmetic."""

    graph: NetworkGraph
    weights: dict[str, dict[str, np.ndarray]]
    blob_formats: dict[str, QFormat]
    weight_format: QFormat
    luts: dict[str, ApproxLUTContent] = field(default_factory=dict)
    state: dict[str, np.ndarray] = field(default_factory=dict)
    #: Pre-quantized integer weights (the output of
    #: :meth:`quantize_layer_weights` for the same graph/weights/format);
    #: the memoizing pipeline passes them in so repeated executors over
    #: one network skip re-quantization.  ``None`` quantizes here.
    quantized_weights: dict[str, dict[str, np.ndarray]] | None = None
    #: Plan optimization mode handed to :meth:`ExecutionPlan.build` —
    #: ``"fused"`` (epilogue fusion + buffer arena + branch-parallel
    #: levels) or ``"naive"`` (one step per layer, sequential).
    plan_optimize: str = "fused"

    def __post_init__(self) -> None:
        self._shapes = infer_shapes(self.graph)
        self._order = self.graph.topological_order()
        for blob in self._shapes:
            if blob not in self.blob_formats:
                raise SimulationError(f"no fixed-point format for blob '{blob}'")
        if self.quantized_weights is None:
            self.quantized_weights = self.quantize_layer_weights(
                self.graph, self.weights, self.weight_format)
        self._quantized_weights = self.quantized_weights
        self._plan: ExecutionPlan | None = None
        # Lazy provider for a shared plan (set by the simulator when the
        # serving runtime or the build pipeline already memoized one).
        self._plan_source: Callable[[], ExecutionPlan] | None = None

    @staticmethod
    def quantize_layer_weights(
        graph: NetworkGraph,
        weights: dict[str, dict[str, np.ndarray]],
        weight_format: QFormat,
    ) -> dict[str, dict[str, np.ndarray]]:
        """Quantize every weighted layer's parameters to integers.

        Pure function of (graph, weights, weight_format) — the build
        pipeline memoizes its result and hands it back via the
        ``quantized_weights`` field.
        """
        quantized: dict[str, dict[str, np.ndarray]] = {}
        for spec in graph.weighted_layers():
            if spec.name not in weights:
                raise SimulationError(f"no weights for layer '{spec.name}'")
            entry = weights[spec.name]
            cooked = {
                "weight": quantize_to_ints(entry["weight"], weight_format),
            }
            if "bias" in entry:
                cooked["bias"] = quantize_to_ints(entry["bias"],
                                                  weight_format)
            if "recurrent_weight" in entry:
                cooked["recurrent_weight"] = quantize_to_ints(
                    entry["recurrent_weight"], weight_format)
            quantized[spec.name] = cooked
        return quantized

    @staticmethod
    def from_program(
        program: ControlProgram,
        weights: dict[str, dict[str, np.ndarray]],
        quantized_weights: dict[str, dict[str, np.ndarray]] | None = None,
        plan_optimize: str = "fused",
    ) -> "QuantizedExecutor":
        return QuantizedExecutor(
            graph=program.design.graph,
            weights=weights,
            blob_formats=dict(program.blob_formats),
            weight_format=program.weight_format
            or program.design.datapath.weight_format,
            luts=dict(program.luts),
            quantized_weights=quantized_weights,
            plan_optimize=plan_optimize,
        )

    def reset_state(self) -> None:
        self.state.clear()

    def plan(self) -> ExecutionPlan:
        """The per-design execution plan, built once and reused.

        Holds every input-independent piece of a forward pass (packed
        weight matrices, im2col gather indices, resolved accumulator
        formats, LUT contents) so :meth:`forward_batch` replays it per
        request instead of re-deriving it.
        """
        if self._plan is None and self._plan_source is not None:
            self._plan = self._plan_source()
        if self._plan is None:
            self._plan = ExecutionPlan.build(
                self.graph,
                self._shapes,
                self._order,
                self._quantized_weights,
                self.blob_formats,
                self.weight_format,
                self._lut,
                optimize=self.plan_optimize,
            )
        return self._plan

    # ------------------------------------------------------------------

    def forward_raw(self, inputs: np.ndarray) -> dict[str, np.ndarray]:
        """Forward propagation; returns raw integer blobs."""
        data_layers = self.graph.inputs()
        if len(data_layers) != 1:
            raise SimulationError("quantized executor expects a single input")
        input_blob = data_layers[0].tops[0]
        expected = self._shapes[input_blob]
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != expected.dims:
            if inputs.size != expected.size:
                raise SimulationError(
                    f"input has shape {inputs.shape}, expected {expected.dims}"
                )
            inputs = inputs.reshape(expected.dims)
        blobs: dict[str, np.ndarray] = {
            input_blob: quantize_to_ints(inputs, self.blob_formats[input_blob])
        }
        for spec in self._order:
            if spec.kind is LayerKind.DATA:
                continue
            raw_inputs = [blobs[b] for b in spec.bottoms]
            in_fmts = [self.blob_formats[b] for b in spec.bottoms]
            out_fmt = self.blob_formats[spec.tops[0]] if spec.tops else in_fmts[0]
            result = self._run_layer(spec, raw_inputs, in_fmts, out_fmt)
            for top in spec.tops:
                blobs[top] = result
        return blobs

    def forward(self, inputs: np.ndarray, *,
                all_blobs: bool = False) -> dict[str, np.ndarray]:
        """Forward propagation; returns real-valued blobs.

        Dequantization is lazy: by default only the network's output
        blob is converted back to real values (the only blob a serving
        caller consumes); ``all_blobs=True`` dequantizes every
        intermediate blob for inspection.
        """
        return self._dequantized(self.forward_raw(inputs), all_blobs)

    def output(self, inputs: np.ndarray) -> np.ndarray:
        blobs = self.forward(inputs)
        return blobs[self.graph.outputs()[-1].tops[0]]

    # ------------------------------------------------------------------

    def stack_batch(self, batch: "list[np.ndarray] | np.ndarray") -> np.ndarray:
        """Validate and stack a request batch into one ``(N, ...)`` array."""
        data_layers = self.graph.inputs()
        if len(data_layers) != 1:
            raise SimulationError("quantized executor expects a single input")
        expected = self._shapes[data_layers[0].tops[0]]
        if isinstance(batch, np.ndarray) and batch.ndim and \
                batch.shape[1:] == expected.dims:
            return np.asarray(batch, dtype=np.float64)
        stacked = np.empty((len(batch),) + expected.dims, dtype=np.float64)
        for index, inputs in enumerate(batch):
            inputs = np.asarray(inputs, dtype=np.float64)
            if inputs.shape != expected.dims:
                if inputs.size != expected.size:
                    raise SimulationError(
                        f"batch item {index} has shape {inputs.shape}, "
                        f"expected {expected.dims}"
                    )
                inputs = inputs.reshape(expected.dims)
            stacked[index] = inputs
        return stacked

    def forward_batch_raw(
            self, batch: "list[np.ndarray] | np.ndarray", *,
            keep: str = "all") -> dict[str, np.ndarray]:
        """Vectorized forward propagation over a batch of inputs.

        ``batch`` is a list of per-request tensors or one stacked
        ``(N, ...)`` array.  Returns raw integer blobs with a leading
        batch axis, integer-exact against ``N`` independent
        :meth:`forward_raw` calls.  ``keep="output"`` returns only the
        network output blob, which lets a fused plan serve every
        intermediate from its buffer arena (the serving hot path).
        Recurrent state entries written by this path carry the batch
        dimension; call :meth:`reset_state` between batches (the
        simulator does) so every request starts from clean state.
        """
        return self.plan().forward_batch_raw(self.stack_batch(batch),
                                             self.state, keep=keep)

    def forward_batch(self, batch: "list[np.ndarray] | np.ndarray", *,
                      all_blobs: bool = False) -> dict[str, np.ndarray]:
        """Batched forward propagation; lazily dequantized blobs."""
        keep = "all" if all_blobs else "output"
        return self._dequantized(self.forward_batch_raw(batch, keep=keep),
                                 all_blobs)

    def _dequantized(self, raw: dict[str, np.ndarray],
                     all_blobs: bool) -> dict[str, np.ndarray]:
        if all_blobs:
            return {
                blob: dequantize(values, self.blob_formats[blob])
                for blob, values in raw.items()
            }
        output_blob = self.graph.outputs()[-1].tops[0]
        return {
            output_blob: dequantize(raw[output_blob],
                                    self.blob_formats[output_blob])
        }

    # ------------------------------------------------------------------

    def _lut(self, function: str, fmt: QFormat) -> ApproxLUTContent:
        if function not in self.luts:
            if function == "reciprocal_power":
                low, high = 0.0, float(fmt.max_value)
            else:
                low, high = lut_range_for_activation(function)
            self.luts[function] = build_lut(function, low, high, 256,
                                            value_format=fmt)
        return self.luts[function]

    def _mac_layer(self, raw: np.ndarray, in_fmt: QFormat, out_fmt: QFormat,
                   weight: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
        """Dot products in exact integer arithmetic, then requantize."""
        acc_fmt = accumulator_format(in_fmt, self.weight_format)
        acc = weight.astype(np.int64) @ np.ravel(raw).astype(np.int64)
        if bias is not None:
            bias_shift = acc_fmt.fraction_bits - self.weight_format.fraction_bits
            acc = acc + (bias.astype(np.int64) << np.int64(bias_shift))
        return requantize(acc, acc_fmt, out_fmt)

    def _run_layer(self, spec: LayerSpec, raw_inputs: list[np.ndarray],
                   in_fmts: list[QFormat], out_fmt: QFormat) -> np.ndarray:
        kind = spec.kind
        first = raw_inputs[0] if raw_inputs else None
        first_fmt = in_fmts[0] if in_fmts else out_fmt
        params = self._quantized_weights.get(spec.name, {})

        if kind.is_convolution:
            return self._conv(spec, first, first_fmt, out_fmt, params)
        if kind is LayerKind.INNER_PRODUCT or kind is LayerKind.ASSOCIATIVE:
            return self._mac_layer(first, first_fmt, out_fmt,
                                   params["weight"].reshape(spec.num_output, -1),
                                   params.get("bias"))
        if kind is LayerKind.RECURRENT:
            drive = self._mac_layer(first, first_fmt, out_fmt,
                                    params["weight"].reshape(spec.num_output, -1),
                                    params.get("bias"))
            previous = self.state.get(spec.name)
            if previous is not None:
                feedback = self._mac_layer(previous, out_fmt, out_fmt,
                                           params["recurrent_weight"], None)
                drive = np.clip(drive + feedback, out_fmt.min_int,
                                out_fmt.max_int)
            self.state[spec.name] = drive
            return drive
        if kind is LayerKind.POOLING:
            return self._pool(spec, first, first_fmt, out_fmt)
        if kind is LayerKind.RELU:
            out = np.maximum(first, 0)
            return requantize(out, first_fmt, out_fmt)
        if kind in (LayerKind.SIGMOID, LayerKind.TANH):
            function = "sigmoid" if kind is LayerKind.SIGMOID else "tanh"
            lut = self._lut(function, out_fmt)
            values = lut.evaluate(dequantize(first, first_fmt))
            return quantize_to_ints(values, out_fmt)
        if kind is LayerKind.LRN:
            return self._lrn(spec, first, first_fmt, out_fmt)
        if kind is LayerKind.DROPOUT:
            return requantize(first, first_fmt, out_fmt)
        if kind is LayerKind.SOFTMAX:
            # The classifier block consumes raw scores; the normalised
            # probabilities are produced host-side from the same scores.
            probabilities = F.softmax(dequantize(first, first_fmt))
            return quantize_to_ints(probabilities, out_fmt)
        if kind is LayerKind.CLASSIFIER:
            order = F.argmax_classifier(first, spec.top_k)
            return order.astype(np.int64)
        if kind is LayerKind.CONCAT:
            aligned = [requantize(raw, fmt, out_fmt)
                       for raw, fmt in zip(raw_inputs, in_fmts)]
            if all(a.ndim == 3 for a in aligned):
                return np.concatenate(aligned, axis=0)
            return np.concatenate([np.ravel(a) for a in aligned])
        if kind is LayerKind.ELTWISE:
            # Residual add: requantize each branch to the output format,
            # then saturating integer sum — same arithmetic as the
            # recurrent feedback path through the accumulator array.
            aligned = [requantize(raw, fmt, out_fmt).astype(np.int64)
                       for raw, fmt in zip(raw_inputs, in_fmts)]
            total = aligned[0]
            for other in aligned[1:]:
                total = np.clip(total + other, out_fmt.min_int,
                                out_fmt.max_int)
            return total
        raise SimulationError(f"quantized execution has no rule for {kind}")

    def _conv(self, spec, raw, in_fmt, out_fmt, params):
        weight = params["weight"]
        dout = weight.shape[0]
        acc_fmt = accumulator_format(in_fmt, self.weight_format)
        bias = params.get("bias")
        groups = conv_groups(spec, raw.shape[0])
        cin_per_group = raw.shape[0] // groups
        dout_per_group = dout // groups
        group_outputs = []
        for g in range(groups):
            image = raw[g * cin_per_group:(g + 1) * cin_per_group]
            kernels = weight[g * dout_per_group:(g + 1) * dout_per_group]
            columns = F.im2col(image.astype(np.int64), spec.kernel_size,
                               spec.stride, spec.pad)
            acc = columns.astype(np.int64) @ kernels.reshape(
                dout_per_group, -1).T.astype(np.int64)
            if bias is not None:
                shift = acc_fmt.fraction_bits - self.weight_format.fraction_bits
                group_bias = bias[g * dout_per_group:(g + 1) * dout_per_group]
                acc = acc + (group_bias.astype(np.int64) << np.int64(shift))
            out_h = (raw.shape[1] + 2 * spec.pad
                     - spec.kernel_size) // spec.stride + 1
            out_w = (raw.shape[2] + 2 * spec.pad
                     - spec.kernel_size) // spec.stride + 1
            group_outputs.append(acc.T.reshape(dout_per_group, out_h, out_w))
        acc = np.concatenate(group_outputs, axis=0)
        return requantize(acc, acc_fmt, out_fmt)

    def _pool(self, spec, raw, in_fmt, out_fmt):
        if spec.pool_method is PoolMethod.MAX:
            pooled = F.max_pool2d(raw.astype(np.int64), spec.kernel_size,
                                  spec.stride, spec.pad).astype(np.int64)
            return requantize(pooled, in_fmt, out_fmt)
        # Average pooling: accumulate, then divide.  A power-of-two window
        # uses the connection box's shifting latch exactly; other windows
        # multiply by a Q0.15 reciprocal constant.
        windows, _, _ = F._pool_windows(raw.astype(np.int64),
                                        spec.kernel_size, spec.stride,
                                        spec.pad)
        sums = windows.sum(axis=(3, 4)).astype(np.int64)
        area = spec.kernel_size * spec.kernel_size
        if _is_power_of_two(area):
            shift = area.bit_length() - 1
            averaged = (sums + (1 << (shift - 1))) >> np.int64(shift)
        else:
            reciprocal = int(round((1 << 15) / area))
            averaged = (sums * reciprocal + (1 << 14)) >> np.int64(15)
        return requantize(averaged.astype(np.int64), in_fmt, out_fmt)

    def _lrn(self, spec, raw, in_fmt, out_fmt):
        lut = self._lut("reciprocal_power", in_fmt)
        values = dequantize(raw, in_fmt)
        channels = values.shape[0]
        half = spec.local_size // 2
        squared = values ** 2
        scale_arg = np.zeros_like(values)
        for c in range(channels):
            lo, hi = max(0, c - half), min(channels, c + half + 1)
            scale_arg[c] = (spec.alpha / spec.local_size) * squared[lo:hi].sum(axis=0)
        scale = lut.evaluate(scale_arg)
        return quantize_to_ints(values * scale, out_fmt)
