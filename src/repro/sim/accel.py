"""The accelerator simulator.

Executes a compiled :class:`~repro.compiler.program.ControlProgram` on
the event kernel.  Each coordinator state (fold phase) is modelled as a
load stage (main AGU moving the fold's tiles over the AXI port) and a
compute stage (datapath beats); double buffering lets phase *i+1*'s load
overlap phase *i*'s compute, exactly the behaviour the two-bank buffers
and the context-buffer triggers implement in hardware.

Functional output is produced by the bit-level
:class:`~repro.sim.quantized.QuantizedExecutor` (the two views describe
the same machine; splitting them keeps big networks simulable at full
scale on a laptop — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.compiler.program import ControlProgram
from repro.errors import SimulationError
from repro.sim.datapath import buffer_stream_beats, compute_beats
from repro.sim.events import EventQueue
from repro.sim.memory import DRAMModel
from repro.sim.plan import ExecutionPlan
from repro.sim.power import EnergyModel, EnergyReport
from repro.sim.quantized import QuantizedExecutor


@dataclass
class PhaseTrace:
    """Timing record of one executed fold phase."""

    layer: str
    phase_index: int
    event: str
    load_cycles: int
    compute_cycles: int
    start_cycle: float
    end_cycle: float
    macs: int = 0


@dataclass
class SimulationResult:
    """Outcome of one forward propagation on the simulated accelerator."""

    cycles: int
    time_s: float
    energy: EnergyReport
    phase_traces: list[PhaseTrace] = field(default_factory=list)
    outputs: dict[str, np.ndarray] | None = None
    dram_words: int = 0
    macs: int = 0

    @property
    def output(self) -> np.ndarray:
        if not self.outputs:
            raise SimulationError("run was timing-only; no functional output")
        return self.outputs["__output__"]

    def layer_cycles(self) -> dict[str, float]:
        """Busy cycles attributed to each layer (compute view)."""
        per_layer: dict[str, float] = {}
        for trace in self.phase_traces:
            per_layer[trace.layer] = per_layer.get(trace.layer, 0.0) \
                + trace.compute_cycles
        return per_layer

    def layer_report(self, peak_macs_per_cycle: int | None = None) -> str:
        """Per-layer breakdown: folds, cycles, load/compute balance.

        ``peak_macs_per_cycle`` (the datapath's multiplier count) adds a
        utilization column — achieved MACs per busy cycle over peak.
        """
        per_layer: dict[str, dict[str, float]] = {}
        for trace in self.phase_traces:
            entry = per_layer.setdefault(trace.layer, {
                "folds": 0, "compute": 0.0, "load": 0.0})
            entry["folds"] += 1
            entry["compute"] += trace.compute_cycles
            entry["load"] += trace.load_cycles
        macs_per_layer: dict[str, int] = {}
        for trace in self.phase_traces:
            macs_per_layer[trace.layer] = \
                macs_per_layer.get(trace.layer, 0) + trace.macs
        lines = ["layer            folds  compute    load       bound    "
                 + ("util" if peak_macs_per_cycle else "")]
        for layer, entry in per_layer.items():
            bound = "memory" if entry["load"] > entry["compute"] \
                else "compute"
            util = ""
            if peak_macs_per_cycle:
                achieved = macs_per_layer[layer] / max(1.0, entry["compute"])
                util = f"{achieved / peak_macs_per_cycle:6.1%}"
            lines.append(
                f"{layer:15s}  {entry['folds']:5d}  {entry['compute']:9.0f}"
                f"  {entry['load']:9.0f}  {bound:8s} {util}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"{self.cycles} cycles = {self.time_s * 1e3:.3f} ms, "
            f"{self.macs} MACs, {self.dram_words} DRAM words, "
            f"energy {self.energy}"
        )


class AcceleratorSimulator:
    """Simulates one generated accelerator running its control program."""

    def __init__(
        self, program: ControlProgram,
        weights: dict[str, dict[str, np.ndarray]] | None = None,
        plan: ExecutionPlan | Callable[[], ExecutionPlan] | None = None,
        optimize: str = "fused",
    ) -> None:
        self.program = program
        self.design = program.design
        self.weights = weights
        self.optimize = optimize
        self.device = self.design.budget.device
        self.dram = DRAMModel.for_device(self.device)
        self._word_bytes = -(-self.design.datapath.data_width // 8)
        self._timing_cache: tuple[int, list[PhaseTrace], EnergyModel] | None \
            = None
        self._executor: QuantizedExecutor | None = None
        #: Pre-built execution plan — or a lazy provider for one — to
        #: inject into the functional executor (the serving runtime
        #: shares one memoized plan across sessions so each session
        #: skips weight packing; a provider keeps plan construction
        #: deferred until a batched/warmed run actually needs it).
        self._shared_plan = plan

    # ------------------------------------------------------------------

    def _timing(self) -> tuple[int, list[PhaseTrace], EnergyModel]:
        """The timing/energy pass, computed once per simulator.

        The control program is input-independent (the fold schedule and
        address streams are fixed at compile time), so one simulator can
        serve many requests reusing the same cycle/energy result — the
        batched serving runtime leans on this.
        """
        if self._timing_cache is None:
            self._timing_cache = self._run_timing()
        return self._timing_cache

    def _functional_executor(self) -> QuantizedExecutor:
        """The bit-level executor, built once and reset per request."""
        if self.weights is None:
            raise SimulationError("functional run needs the trained weights")
        if self._executor is None:
            self._executor = QuantizedExecutor.from_program(
                self.program, self.weights, plan_optimize=self.optimize)
            if callable(self._shared_plan):
                self._executor._plan_source = self._shared_plan
            elif self._shared_plan is not None:
                self._executor._plan = self._shared_plan
        self._executor.reset_state()
        return self._executor

    def warm(self, functional: bool = True) -> None:
        """Populate the per-simulator caches before the first request."""
        self._timing()
        if functional and self.weights is not None:
            self._functional_executor().plan()

    def run(self, inputs: np.ndarray | None = None,
            functional: bool = True,
            all_blobs: bool = False) -> SimulationResult:
        """Simulate one forward propagation.

        ``functional=False`` skips the bit-level execution (used by the
        performance sweeps where only timing/energy are measured).
        ``all_blobs=True`` keeps every intermediate blob in ``outputs``;
        by default only the network output (and the ``"__output__"``
        alias) is dequantized and returned.
        """
        cycles, traces, energy_model = self._timing()
        energy = energy_model.report(cycles)
        outputs = None
        if functional:
            if inputs is None:
                raise SimulationError("functional run needs an input array")
            executor = self._functional_executor()
            blobs = executor.forward(inputs, all_blobs=all_blobs)
            output_blob = self.design.graph.outputs()[-1].tops[0]
            outputs = dict(blobs)
            outputs["__output__"] = blobs[output_blob]
        return SimulationResult(
            cycles=cycles,
            time_s=cycles / self.device.clock_hz,
            energy=energy,
            phase_traces=traces,
            outputs=outputs,
            dram_words=energy_model.dram_words,
            macs=energy_model.macs,
        )

    def run_batch(self, batch: "list[np.ndarray] | np.ndarray",
                  functional: bool = True,
                  all_blobs: bool = False) -> list[SimulationResult]:
        """Simulate one forward propagation per input in ``batch``.

        The whole batch runs through one vectorized
        :meth:`~repro.sim.quantized.QuantizedExecutor.forward_batch`
        pass over the shared execution plan, and the input-independent
        timing pass is replayed once for all requests.  Every request
        starts from clean recurrent state — batch entries are
        independent requests, not timesteps of one sequence.
        """
        if not functional:
            return [self.run(functional=False) for _ in batch]
        cycles, traces, energy_model = self._timing()
        energy = energy_model.report(cycles)
        executor = self._functional_executor()
        stacked = executor.forward_batch(batch, all_blobs=all_blobs)
        output_blob = self.design.graph.outputs()[-1].tops[0]
        results = []
        for index in range(len(batch)):
            outputs = {blob: array[index]
                       for blob, array in stacked.items()}
            outputs["__output__"] = outputs[output_blob]
            results.append(SimulationResult(
                cycles=cycles,
                time_s=cycles / self.device.clock_hz,
                energy=energy,
                phase_traces=traces,
                outputs=outputs,
                dram_words=energy_model.dram_words,
                macs=energy_model.macs,
            ))
        return results

    # ------------------------------------------------------------------

    def _phase_load_cycles(self, plan) -> int:
        words = plan.dram_read_words() + plan.dram_write_words()
        bursts = len(plan.main_feature_reads) + len(plan.main_weight_reads) \
            + len(plan.main_writes)
        return self.dram.burst_cycles(words * self._word_bytes,
                                      bursts=max(1, bursts))

    def _phase_compute_cycles(self, plan) -> int:
        beats = compute_beats(self.design, plan.phase)
        stream = buffer_stream_beats(self.design, plan.phase)
        return max(beats, stream)

    def _run_timing(self) -> tuple[int, list[PhaseTrace], EnergyModel]:
        queue = EventQueue()
        energy_model = EnergyModel(self.device, self.design,
                                   word_bytes=self._word_bytes)
        plans = self.program.address_plans
        if not plans:
            raise SimulationError("control program has no phases")

        traces: list[PhaseTrace] = []
        load_done = [0.0] * len(plans)
        compute_done = [0.0] * len(plans)

        # Event-driven double-buffered pipeline: load[i] can start once
        # load[i-1] finished (one main AGU); compute[i] starts when its
        # operands are on chip AND the shared datapath is free.
        state = {"next_load": 0, "next_compute": 0, "datapath_busy": False}

        def schedule_load() -> None:
            index = state["next_load"]
            if index >= len(plans):
                return
            plan = plans[index]
            load_cycles = self._phase_load_cycles(plan)

            def finish_load(i=index) -> None:
                load_done[i] = queue.now
                state["next_load"] += 1
                schedule_load()
                maybe_compute()

            queue.schedule(load_cycles, finish_load)

        def maybe_compute() -> None:
            if state["datapath_busy"]:
                return
            index = state["next_compute"]
            if index >= len(plans):
                return
            if state["next_load"] <= index:
                return  # operands not on chip yet
            plan = plans[index]
            compute_cycles = self._phase_compute_cycles(plan)
            start = queue.now
            state["datapath_busy"] = True

            def finish_compute(i=index, cycles=compute_cycles,
                               begun=start) -> None:
                compute_done[i] = queue.now
                phase = plans[i].phase
                energy_model.count_phase(
                    macs=phase.macs,
                    sram_words=plans[i].buffer_read_words()
                    + phase.output_words,
                    dram_words=plans[i].dram_read_words()
                    + plans[i].dram_write_words(),
                )
                traces.append(PhaseTrace(
                    layer=phase.layer,
                    phase_index=phase.phase_index,
                    event=plans[i].event,
                    load_cycles=self._phase_load_cycles(plans[i]),
                    compute_cycles=cycles,
                    start_cycle=begun,
                    end_cycle=queue.now,
                    macs=phase.macs,
                ))
                state["next_compute"] += 1
                state["datapath_busy"] = False
                maybe_compute()

            queue.schedule(compute_cycles, finish_compute)

        # The host ARM core pays a fixed DMA/launch overhead before the
        # first pattern trigger reaches the coordinator.
        queue.schedule(self.device.invocation_overhead_cycles, schedule_load)
        total = queue.run()
        if state["next_compute"] != len(plans):
            raise SimulationError(
                f"pipeline stalled: {state['next_compute']}/{len(plans)} "
                "phases completed"
            )
        return int(round(total)), traces, energy_model
