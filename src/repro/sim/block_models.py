"""Cycle-faithful models of the streaming datapath blocks.

Python mirrors of the Verilog templates in :mod:`repro.rtl.templates`,
stepped element by element exactly as the hardware consumes its input
stream.  Tests drive these models and the vectorised numpy operations of
:mod:`repro.nn.functional` with the same data and assert equality — the
same RTL-vs-golden methodology the AGU model uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError


@dataclass
class KSorterModel:
    """The streaming top-k compare-exchange chain (classifier block)."""

    k: int
    score_width: int = 16

    scores: list[int] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)
    counter: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SimulationError("k-sorter needs k >= 1")
        self.clear()

    def clear(self) -> None:
        minimum = -(1 << (self.score_width - 1))
        self.scores = [minimum] * self.k
        self.indices = [0] * self.k
        self.counter = 0

    def insert(self, score: int) -> None:
        """One valid_in beat: bubble the candidate down the chain.

        A fresh candidate must *strictly* beat a held score (earlier
        ties rank first); once the bubble carries a displaced held
        element it wins ties below it (it was already ranked higher) —
        one ``displaced`` flag in the hardware chain.
        """
        bubble_score = int(score)
        bubble_index = self.counter
        displaced = False
        for position in range(self.k):
            wins = (bubble_score >= self.scores[position] if displaced
                    else bubble_score > self.scores[position])
            if wins:
                self.scores[position], bubble_score = \
                    bubble_score, self.scores[position]
                self.indices[position], bubble_index = \
                    bubble_index, self.indices[position]
                displaced = True
        self.counter += 1

    def run(self, stream: np.ndarray) -> list[int]:
        """Stream every score through; returns the top-k indices."""
        self.clear()
        for score in np.ravel(stream):
            self.insert(int(score))
        valid = min(self.k, self.counter)
        return self.indices[:valid]


@dataclass
class PoolingLaneModel:
    """One pooling lane: running max and running sum with window_start."""

    width: int = 16

    best: int = 0
    run_sum: int = 0
    _primed: bool = False

    def step(self, value: int, window_start: bool) -> None:
        value = int(value)
        if window_start or not self._primed:
            self.best = value
            self.run_sum = value
            self._primed = True
        else:
            if value > self.best:
                self.best = value
            self.run_sum += value

    def pool_window(self, window: np.ndarray, mode_max: bool) -> int:
        """Stream one window through the lane, return its pooled value."""
        flat = np.ravel(window)
        if flat.size == 0:
            raise SimulationError("empty pooling window")
        for position, value in enumerate(flat):
            self.step(int(value), window_start=(position == 0))
        return self.best if mode_max else self.run_sum


@dataclass
class AccumulatorLaneModel:
    """One saturating accumulator lane."""

    width: int = 32
    total: int = 0

    @property
    def max_int(self) -> int:
        return (1 << (self.width - 1)) - 1

    @property
    def min_int(self) -> int:
        return -(1 << (self.width - 1))

    def clear(self) -> None:
        self.total = 0

    def add(self, partial: int) -> int:
        self.total = max(self.min_int, min(self.max_int,
                                           self.total + int(partial)))
        return self.total

    def accumulate(self, partials: np.ndarray) -> int:
        self.clear()
        for partial in np.ravel(partials):
            self.add(int(partial))
        return self.total


@dataclass
class DropoutLFSRModel:
    """The drop-out inserter's 16-bit Fibonacci LFSR and gate.

    Matches the Verilog: feedback from the maximal-length polynomial
    ``x^16 + x^14 + x^13 + x^11 + 1`` (period 2^16 - 1), seeded to 1 on
    reset; a lane passes its value when ``bypass`` or
    ``lfsr >= threshold``.
    """

    WIDTH = 16
    state: int = 1

    def reset(self) -> None:
        self.state = 1

    def step(self) -> int:
        bit = lambda n: (self.state >> n) & 1  # noqa: E731 - local probe
        feedback = bit(15) ^ bit(13) ^ bit(12) ^ bit(10)
        self.state = ((self.state << 1) & ((1 << self.WIDTH) - 1)) \
            | feedback
        return self.state

    def gate(self, values: np.ndarray, threshold: int,
             bypass: bool = False) -> np.ndarray:
        """Gate one value per clock; threshold sets the drop rate."""
        out = np.zeros_like(np.asarray(values))
        for index, value in enumerate(np.ravel(values)):
            keep = bypass or self.state >= threshold
            out.flat[index] = value if keep else 0
            self.step()
        return out

    def period(self, max_steps: int = 1 << 17) -> int:
        """Cycle length of the LFSR from the reset state."""
        self.reset()
        seen_first = self.state
        for count in range(1, max_steps + 1):
            self.step()
            if self.state == seen_first:
                return count
        raise SimulationError("LFSR period exceeds the search bound")
