"""Per-design execution plan: the batched bit-level hot path.

A :class:`ExecutionPlan` is everything about one compiled design that a
forward propagation needs but that does not depend on the input: packed
``(Dout, Cin*k*k)`` int64 weight matrices, precomputed im2col
gather-index tensors per convolution layer, pre-resolved wide
accumulator formats with the bias already shifted into them, and the
shared Approx-LUT contents.  It is built once per
:class:`~repro.sim.quantized.QuantizedExecutor` (so once per serving
session) and replayed for every request.

:meth:`ExecutionPlan.forward_batch_raw` vectorizes every layer kernel
over a leading batch axis ``N``: a micro-batch of requests costs one
fancy-index plus one GEMM per convolution instead of ``N`` of each.  The
arithmetic is integer-exact against the per-sample reference path in
:mod:`repro.sim.quantized` — every blob it produces equals the
corresponding :meth:`~repro.sim.quantized.QuantizedExecutor.forward_raw`
blob with a leading batch dimension, which the test suite asserts
network by network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.compiler.lut import ApproxLUTContent
from repro.errors import SimulationError
from repro.fixedpoint.format import QFormat
from repro.fixedpoint.ops import (
    accumulator_format,
    dequantize,
    quantize_to_ints,
    requantize,
)
from repro.frontend.layers import LayerKind, LayerSpec, PoolMethod
from repro.frontend.shapes import TensorShape, conv_groups
from repro.nn import functional as F


def _is_power_of_two(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


#: Largest integer float64 represents exactly (53-bit mantissa).
_FLOAT_EXACT_LIMIT = float(2 ** 53)


def _float_gemm_exact(reduce_dim: int, in_fmt: QFormat,
                      weight_fmt: QFormat) -> bool:
    """Whether a float64 BLAS GEMM reproduces the int64 matmul exactly.

    Every product of a data word and a weight word is an integer of at
    most ``in_bits + weight_bits`` magnitude, and any partial sum over
    the reduction axis is bounded by ``K * max|d| * max|w|``.  When that
    bound stays under 2^53 every intermediate value is an integer float64
    represents exactly, so dgemm returns the same integers as the int64
    kernel **regardless of its blocking or summation order** — and runs
    an order of magnitude faster, since numpy's integer matmul cannot
    use BLAS.
    """
    bound = float(reduce_dim) * float(in_fmt.max_int + 1) \
        * float(weight_fmt.max_int + 1)
    return bound < _FLOAT_EXACT_LIMIT


def _bias_in_accumulator(bias: np.ndarray | None, acc_fmt: QFormat,
                         weight_fmt: QFormat) -> np.ndarray | None:
    """The bias pre-shifted into the accumulator's fraction field."""
    if bias is None:
        return None
    shift = acc_fmt.fraction_bits - weight_fmt.fraction_bits
    return bias.astype(np.int64) << np.int64(shift)


@dataclass
class LayerStep:
    """One layer of the plan: spec plus its input-independent pieces."""

    spec: LayerSpec
    in_fmts: list[QFormat]
    out_fmt: QFormat
    #: Wide accumulator format for MAC layers (conv / FC / recurrent).
    acc_fmt: QFormat | None = None
    #: Packed weights, transposed for ``columns @ weight``: one
    #: ``(Cin/g*k*k, Dout/g)`` matrix per convolution group, or a single
    #: ``(In, Out)`` matrix for dense layers.  Stored as transposed
    #: views of C-contiguous ``(Out, In)`` packs — the F-contiguous
    #: right-hand side is what numpy's integer matmul kernel wants
    #: (contiguous along the reduction axis; ~8x faster than the
    #: C-contiguous transpose copy).
    weights: list[np.ndarray] = field(default_factory=list)
    #: float64 copies of ``weights`` when the accumulation provably fits
    #: the 53-bit mantissa (see :func:`_float_gemm_exact`); ``None``
    #: keeps the GEMM on the int64 kernel.
    float_weights: list[np.ndarray] | None = None
    #: Bias already shifted into ``acc_fmt`` (full ``Dout`` vector).
    bias_acc: np.ndarray | None = None
    #: Transposed recurrent weight ``(Out, Out)`` for the feedback MAC.
    recurrent_t: np.ndarray | None = None
    float_recurrent: np.ndarray | None = None
    recurrent_acc_fmt: QFormat | None = None
    #: im2col gather indices ``(out_h*out_w, Cin/g*k*k)`` into one
    #: group's zero-padded flattened image.
    gather: np.ndarray | None = None
    out_h: int = 0
    out_w: int = 0
    #: Shared Approx-LUT content for sigmoid/tanh/LRN scaling.
    lut: ApproxLUTContent | None = None


@dataclass
class ExecutionPlan:
    """Input-independent execution state for one compiled design."""

    input_blob: str
    input_fmt: QFormat
    input_dims: tuple[int, ...]
    output_blob: str
    steps: list[LayerStep]
    blob_formats: dict[str, QFormat]

    # ------------------------------------------------------------------
    # Construction

    @staticmethod
    def build(
        graph,
        shapes: dict[str, TensorShape],
        order: list[LayerSpec],
        quantized_weights: dict[str, dict[str, np.ndarray]],
        blob_formats: dict[str, QFormat],
        weight_format: QFormat,
        lut_for: Callable[[str, QFormat], ApproxLUTContent],
    ) -> "ExecutionPlan":
        data_layers = graph.inputs()
        if len(data_layers) != 1:
            raise SimulationError("execution plan expects a single input")
        input_blob = data_layers[0].tops[0]
        steps: list[LayerStep] = []
        for spec in order:
            if spec.kind is LayerKind.DATA:
                continue
            in_fmts = [blob_formats[b] for b in spec.bottoms]
            out_fmt = blob_formats[spec.tops[0]] if spec.tops else in_fmts[0]
            step = LayerStep(spec=spec, in_fmts=in_fmts, out_fmt=out_fmt)
            params = quantized_weights.get(spec.name, {})
            kind = spec.kind
            if kind.is_convolution:
                ExecutionPlan._plan_conv(step, shapes[spec.bottoms[0]].dims,
                                         params, weight_format)
            elif kind in (LayerKind.INNER_PRODUCT, LayerKind.ASSOCIATIVE,
                          LayerKind.RECURRENT):
                step.acc_fmt = accumulator_format(in_fmts[0], weight_format)
                weight = params["weight"].reshape(spec.num_output, -1)
                step.weights = [
                    np.ascontiguousarray(weight, dtype=np.int64).T]
                if _float_gemm_exact(weight.shape[1], in_fmts[0],
                                     weight_format):
                    step.float_weights = [
                        step.weights[0].astype(np.float64)]
                step.bias_acc = _bias_in_accumulator(
                    params.get("bias"), step.acc_fmt, weight_format)
                if kind is LayerKind.RECURRENT:
                    step.recurrent_t = np.ascontiguousarray(
                        params["recurrent_weight"], dtype=np.int64).T
                    step.recurrent_acc_fmt = accumulator_format(
                        out_fmt, weight_format)
                    if _float_gemm_exact(step.recurrent_t.shape[0],
                                         out_fmt, weight_format):
                        step.float_recurrent = step.recurrent_t.astype(
                            np.float64)
            elif kind in (LayerKind.SIGMOID, LayerKind.TANH):
                function = "sigmoid" if kind is LayerKind.SIGMOID else "tanh"
                step.lut = lut_for(function, out_fmt)
            elif kind is LayerKind.LRN:
                step.lut = lut_for("reciprocal_power", in_fmts[0])
            steps.append(step)
        return ExecutionPlan(
            input_blob=input_blob,
            input_fmt=blob_formats[input_blob],
            input_dims=shapes[input_blob].dims,
            output_blob=graph.outputs()[-1].tops[0],
            steps=steps,
            blob_formats=blob_formats,
        )

    @staticmethod
    def _plan_conv(step: LayerStep, in_dims: tuple[int, ...],
                   params: dict[str, np.ndarray],
                   weight_format: QFormat) -> None:
        spec = step.spec
        weight = params["weight"]
        dout = weight.shape[0]
        groups = conv_groups(spec, in_dims[0])
        cin_per_group = in_dims[0] // groups
        dout_per_group = dout // groups
        step.acc_fmt = accumulator_format(step.in_fmts[0], weight_format)
        step.weights = [
            np.ascontiguousarray(
                weight[g * dout_per_group:(g + 1) * dout_per_group]
                .reshape(dout_per_group, -1), dtype=np.int64).T
            for g in range(groups)
        ]
        if _float_gemm_exact(step.weights[0].shape[0], step.in_fmts[0],
                             weight_format):
            step.float_weights = [w.astype(np.float64)
                                  for w in step.weights]
        step.bias_acc = _bias_in_accumulator(params.get("bias"),
                                             step.acc_fmt, weight_format)
        step.gather, step.out_h, step.out_w = F.im2col_indices(
            (cin_per_group, in_dims[1], in_dims[2]),
            spec.kernel_size, spec.stride, spec.pad)

    # ------------------------------------------------------------------
    # Batched execution

    def forward_batch_raw(
        self,
        inputs: np.ndarray,
        state: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """One vectorized forward pass; raw integer blobs, leading ``N``.

        ``state`` is the executor's recurrent-state dict; batched entries
        carry the batch dimension ``(N, Out)`` and evolve per sample.
        """
        blobs: dict[str, np.ndarray] = {
            self.input_blob: quantize_to_ints(inputs, self.input_fmt)
        }
        for step in self.steps:
            raw_inputs = [blobs[b] for b in step.spec.bottoms]
            result = self._run_step(step, raw_inputs, state)
            for top in step.spec.tops:
                blobs[top] = result
        return blobs

    def _run_step(self, step: LayerStep, raw_inputs: list[np.ndarray],
                  state: dict[str, np.ndarray]) -> np.ndarray:
        spec = step.spec
        kind = spec.kind
        first = raw_inputs[0] if raw_inputs else None
        first_fmt = step.in_fmts[0] if step.in_fmts else step.out_fmt
        out_fmt = step.out_fmt

        if kind.is_convolution:
            return self._conv(step, first)
        if kind is LayerKind.INNER_PRODUCT or kind is LayerKind.ASSOCIATIVE:
            return self._dense(step, first)
        if kind is LayerKind.RECURRENT:
            return self._recurrent(step, first, state)
        if kind is LayerKind.POOLING:
            return self._pool(step, first)
        if kind is LayerKind.RELU:
            return requantize(np.maximum(first, 0), first_fmt, out_fmt)
        if kind in (LayerKind.SIGMOID, LayerKind.TANH):
            values = step.lut.evaluate(dequantize(first, first_fmt))
            return quantize_to_ints(values, out_fmt)
        if kind is LayerKind.LRN:
            return self._lrn(step, first)
        if kind is LayerKind.DROPOUT:
            return requantize(first, first_fmt, out_fmt)
        if kind is LayerKind.SOFTMAX:
            probabilities = F.softmax_batch(dequantize(first, first_fmt))
            return quantize_to_ints(probabilities, out_fmt)
        if kind is LayerKind.CLASSIFIER:
            return F.argmax_classifier_batch(first, spec.top_k)
        if kind is LayerKind.CONCAT:
            aligned = [requantize(raw, fmt, out_fmt)
                       for raw, fmt in zip(raw_inputs, step.in_fmts)]
            if all(a.ndim == 4 for a in aligned):
                return np.concatenate(aligned, axis=1)
            count = aligned[0].shape[0]
            return np.concatenate(
                [a.reshape(count, -1) for a in aligned], axis=1)
        if kind is LayerKind.ELTWISE:
            # Bit-exact mirror of the per-sample rule in
            # repro.sim.quantized: requantize every branch to the output
            # format, then saturating integer sum.
            aligned = [requantize(raw, fmt, out_fmt).astype(np.int64)
                       for raw, fmt in zip(raw_inputs, step.in_fmts)]
            total = aligned[0]
            for other in aligned[1:]:
                total = np.clip(total + other, out_fmt.min_int,
                                out_fmt.max_int)
            return total
        raise SimulationError(f"batched execution has no rule for {kind}")

    def _conv(self, step: LayerStep, raw: np.ndarray) -> np.ndarray:
        spec = step.spec
        count, channels = raw.shape[0], raw.shape[1]
        groups = conv_groups(spec, channels)
        cin_per_group = channels // groups
        padded = F.pad2d(raw, spec.pad)
        # (N, groups, Cin/g * Hp * Wp): one flat image slab per group.
        flat = padded.reshape(count, groups,
                              cin_per_group * padded.shape[2]
                              * padded.shape[3])
        use_float = step.float_weights is not None
        if use_float:
            # Convert the (small) image slab once; the gathered columns
            # come out float64 and the GEMM goes through BLAS.
            flat = flat.astype(np.float64)
        group_outputs = []
        offset = 0
        for g, weight_t in enumerate(step.weights):
            dout_per_group = weight_t.shape[1]
            columns = flat[:, g][:, step.gather]      # (N, P, Cin/g*k*k)
            if use_float:
                reduce = columns.shape[-1]
                acc = (columns.reshape(-1, reduce)
                       @ step.float_weights[g]).astype(np.int64)
                acc = acc.reshape(count, -1, dout_per_group)
            else:
                acc = columns @ weight_t              # (N, P, Dout/g)
            if step.bias_acc is not None:
                acc = acc + step.bias_acc[offset:offset + dout_per_group]
            group_outputs.append(
                acc.transpose(0, 2, 1).reshape(count, dout_per_group,
                                               step.out_h, step.out_w))
            offset += dout_per_group
        acc = np.concatenate(group_outputs, axis=1)
        return requantize(acc, step.acc_fmt, step.out_fmt)

    def _dense(self, step: LayerStep, raw: np.ndarray) -> np.ndarray:
        flat = raw.reshape(raw.shape[0], -1)
        if step.float_weights is not None:
            acc = (flat.astype(np.float64)
                   @ step.float_weights[0]).astype(np.int64)
        else:
            acc = flat @ step.weights[0]
        if step.bias_acc is not None:
            acc = acc + step.bias_acc
        return requantize(acc, step.acc_fmt, step.out_fmt)

    def _recurrent(self, step: LayerStep, raw: np.ndarray,
                   state: dict[str, np.ndarray]) -> np.ndarray:
        drive = self._dense(step, raw)
        previous = state.get(step.spec.name)
        if previous is not None:
            if previous.shape != drive.shape:
                raise SimulationError(
                    f"recurrent state for '{step.spec.name}' has shape "
                    f"{previous.shape}, batch expects {drive.shape}; call "
                    "reset_state() between batch shapes"
                )
            if step.float_recurrent is not None:
                echo = (previous.astype(np.float64)
                        @ step.float_recurrent).astype(np.int64)
            else:
                echo = previous @ step.recurrent_t
            feedback = requantize(echo, step.recurrent_acc_fmt,
                                  step.out_fmt)
            drive = np.clip(drive + feedback, step.out_fmt.min_int,
                            step.out_fmt.max_int)
        state[step.spec.name] = drive
        return drive

    def _pool(self, step: LayerStep, raw: np.ndarray) -> np.ndarray:
        spec = step.spec
        in_fmt, out_fmt = step.in_fmts[0], step.out_fmt
        if spec.pool_method is PoolMethod.MAX:
            # Padding never wins the max: pad with each sample's minimum.
            pad_values = raw.min(axis=(1, 2, 3)) \
                if spec.pad and raw.size else 0
            windows, _, _ = F.pool_windows_batch(
                raw.astype(np.int64), spec.kernel_size, spec.stride,
                spec.pad, pad_values)
            return requantize(windows.max(axis=(4, 5)), in_fmt, out_fmt)
        windows, _, _ = F.pool_windows_batch(
            raw.astype(np.int64), spec.kernel_size, spec.stride, spec.pad,
            0)
        sums = windows.sum(axis=(4, 5)).astype(np.int64)
        area = spec.kernel_size * spec.kernel_size
        if _is_power_of_two(area):
            shift = area.bit_length() - 1
            averaged = (sums + (1 << (shift - 1))) >> np.int64(shift)
        else:
            reciprocal = int(round((1 << 15) / area))
            averaged = (sums * reciprocal + (1 << 14)) >> np.int64(15)
        return requantize(averaged.astype(np.int64), in_fmt, out_fmt)

    def _lrn(self, step: LayerStep, raw: np.ndarray) -> np.ndarray:
        spec = step.spec
        values = dequantize(raw, step.in_fmts[0])
        channels = values.shape[1]
        half = spec.local_size // 2
        squared = values ** 2
        scale_arg = np.zeros_like(values)
        for c in range(channels):
            lo, hi = max(0, c - half), min(channels, c + half + 1)
            scale_arg[:, c] = (spec.alpha / spec.local_size) \
                * squared[:, lo:hi].sum(axis=1)
        scale = step.lut.evaluate(scale_arg)
        return quantize_to_ints(values * scale, step.out_fmt)
