"""Per-design execution plan: the batched bit-level hot path.

A :class:`ExecutionPlan` is everything about one compiled design that a
forward propagation needs but that does not depend on the input: packed
``(Dout, Cin*k*k)`` int64 weight matrices, precomputed im2col
gather-index tensors per convolution layer, pre-resolved wide
accumulator formats with the bias already shifted into them, and the
shared Approx-LUT contents.  It is built once per
:class:`~repro.sim.quantized.QuantizedExecutor` (so once per serving
session) and replayed for every request.

:meth:`ExecutionPlan.forward_batch_raw` vectorizes every layer kernel
over a leading batch axis ``N``: a micro-batch of requests costs one
fancy-index plus one GEMM per convolution instead of ``N`` of each.  The
arithmetic is integer-exact against the per-sample reference path in
:mod:`repro.sim.quantized` — every blob it produces equals the
corresponding :meth:`~repro.sim.quantized.QuantizedExecutor.forward_raw`
blob with a leading batch dimension, which the test suite asserts
network by network.

On top of the per-layer kernels sits a graph-level plan optimizer
(``optimize="fused"``, the default) mirroring how NN-Gen folds layer
groups onto one datapath so data streams through conv→activation→pool
without round-tripping to memory:

* **Epilogue fusion** — each requantize / activation / dropout /
  pooling / LRN step with a single producer whose output nobody else
  reads is chained onto that producer into one :class:`PlanNode`;
  same-shape epilogues then run in place on the producer's buffer, so
  the intermediate value is never materialized as its own allocation.
* **Liveness-based buffer arena** — every value's last-use level is
  precomputed at build time and all step outputs and GEMM/im2col
  scratch are served from a size-classed recycling
  :class:`BufferArena`, replacing the per-flush ``np.empty`` / gather
  allocations of the naive plan.  The arena's high-water mark is
  reported through :meth:`ExecutionPlan.stats`.
* **Branch-parallel scheduling** — nodes are topologically levelled;
  independent branches within a level (squeezenet fire expands, resnet
  skip paths) can execute concurrently on a shared thread pool,
  joining at the eltwise/concat that consumes them.

``optimize="naive"`` keeps one node per step, sequential order, and the
original allocate-per-step kernels — the exact pre-optimizer behavior,
kept as the benchmark baseline and the bit-exactness oracle.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, cast

import numpy as np
import numpy.typing as npt

from repro.compiler.lut import ApproxLUTContent
from repro.errors import SimulationError
from repro.fixedpoint.format import QFormat
from repro.fixedpoint.ops import (
    accumulator_format,
    dequantize,
    quantize_to_ints,
    requantize,
)
from repro.frontend.graph import NetworkGraph
from repro.frontend.layers import LayerKind, LayerSpec, PoolMethod
from repro.frontend.shapes import TensorShape, conv_groups
from repro.nn import functional as F

IntArray = npt.NDArray[np.int64]
FloatArray = npt.NDArray[np.float64]
AnyArray = npt.NDArray[Any]

#: Step kinds that may be folded onto their producer as an epilogue.
_EPILOGUE_KINDS = frozenset({
    LayerKind.RELU, LayerKind.SIGMOID, LayerKind.TANH, LayerKind.DROPOUT,
    LayerKind.POOLING, LayerKind.LRN,
})
#: Epilogues whose output has the producer's shape, so they can run in
#: place on the producer's buffer.
_INPLACE_KINDS = frozenset({
    LayerKind.RELU, LayerKind.SIGMOID, LayerKind.TANH, LayerKind.DROPOUT,
})
#: Step kinds whose results escape the flush (recurrent state persists
#: across calls; classifier indices go straight to the caller), so they
#: must never live on the arena.
_ESCAPING_KINDS = frozenset({LayerKind.RECURRENT, LayerKind.CLASSIFIER})


def _is_power_of_two(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


#: Largest integer float64 represents exactly (53-bit mantissa).
_FLOAT_EXACT_LIMIT = float(2 ** 53)


def _float_gemm_exact(reduce_dim: int, in_fmt: QFormat,
                      weight_fmt: QFormat) -> bool:
    """Whether a float64 BLAS GEMM reproduces the int64 matmul exactly.

    Every product of a data word and a weight word is an integer of at
    most ``in_bits + weight_bits`` magnitude, and any partial sum over
    the reduction axis is bounded by ``K * max|d| * max|w|``.  When that
    bound stays under 2^53 every intermediate value is an integer float64
    represents exactly, so dgemm returns the same integers as the int64
    kernel **regardless of its blocking or summation order** — and runs
    an order of magnitude faster, since numpy's integer matmul cannot
    use BLAS.
    """
    bound = float(reduce_dim) * float(in_fmt.max_int + 1) \
        * float(weight_fmt.max_int + 1)
    return bound < _FLOAT_EXACT_LIMIT


def _bias_in_accumulator(bias: IntArray | None, acc_fmt: QFormat,
                         weight_fmt: QFormat) -> IntArray | None:
    """The bias pre-shifted into the accumulator's fraction field."""
    if bias is None:
        return None
    shift = acc_fmt.fraction_bits - weight_fmt.fraction_bits
    return cast(IntArray, bias.astype(np.int64) << np.int64(shift))


# ----------------------------------------------------------------------
# Buffer arena

class BufferArena:
    """Size-classed recycling pool for flush-lifetime buffers.

    Blocks are flat ``uint8`` arrays in power-of-two size classes
    (minimum 512 bytes).  :meth:`take` hands out a typed, shaped view of
    a free block (allocating a new block only on a pool miss) and
    :meth:`release` returns the view's underlying block to its free
    list.  Blocks are owned forever once allocated, so across flushes a
    plan's working set stabilizes to a handful of reused blocks instead
    of fresh ``np.empty`` calls per layer per flush.

    Releasing an array the arena does not own is a no-op, so callers can
    uniformly release every value they are done with.  All bookkeeping
    is lock-protected; concurrent flushes (server worker threads
    sharing one plan) simply draw more blocks.
    """

    _MIN_BLOCK = 512

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: dict[int, list[npt.NDArray[np.uint8]]] = {}
        #: id() -> block for every block ever allocated; keeps blocks
        #: alive (ids stable) and marks ownership for :meth:`release`.
        self._blocks: dict[int, npt.NDArray[np.uint8]] = {}
        self._in_use_bytes = 0
        #: Total bytes of blocks ever allocated (the resident pool).
        self.pool_bytes = 0
        #: High-water mark of concurrently checked-out bytes.
        self.peak_bytes = 0
        self.takes = 0
        self.misses = 0

    @staticmethod
    def _class_for(nbytes: int) -> int:
        size = BufferArena._MIN_BLOCK
        while size < nbytes:
            size <<= 1
        return size

    def take(self, shape: tuple[int, ...], dtype: Any) -> AnyArray:
        """A writable ``shape``/``dtype`` array backed by a pool block."""
        dt = np.dtype(dtype)
        nbytes = dt.itemsize * math.prod(shape)
        if nbytes == 0:
            return np.empty(shape, dtype=dt)
        size_class = self._class_for(nbytes)
        with self._lock:
            stack = self._free.get(size_class)
            block = stack.pop() if stack else None
            self.takes += 1
            if block is None:
                self.misses += 1
            self._in_use_bytes += size_class
            if self._in_use_bytes > self.peak_bytes:
                self.peak_bytes = self._in_use_bytes
        if block is None:
            block = np.empty(size_class, dtype=np.uint8)
            with self._lock:
                self._blocks[id(block)] = block
                self.pool_bytes += size_class
        view = block[:nbytes].view(dt).reshape(shape)
        return cast(AnyArray, view)

    def release(self, array: AnyArray) -> None:
        """Return ``array``'s block to the pool; no-op if not arena-owned."""
        base: Any = array
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        if not isinstance(base, np.ndarray) or base.dtype != np.uint8 \
                or base.ndim != 1:
            return
        block = cast(npt.NDArray[np.uint8], base)
        with self._lock:
            if id(block) not in self._blocks:
                return
            self._free.setdefault(block.nbytes, []).append(block)
            self._in_use_bytes -= block.nbytes

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "pool_bytes": self.pool_bytes,
                "peak_bytes": self.peak_bytes,
                "in_use_bytes": self._in_use_bytes,
                "takes": self.takes,
                "misses": self.misses,
            }


class _Scratch:
    """One pooled block carved into a kernel's scratch views.

    A kernel needing several flush-lifetime temporaries pays one arena
    take/release round trip instead of one per buffer; carved views are
    64-byte aligned within the block.
    """

    __slots__ = ("_arena", "_block", "_offset")

    _ALIGN = 64

    @staticmethod
    def aligned(nbytes: int) -> int:
        return (nbytes + _Scratch._ALIGN - 1) & ~(_Scratch._ALIGN - 1)

    def __init__(self, arena: BufferArena, nbytes: int) -> None:
        self._arena = arena
        self._block = arena.take((nbytes,), np.uint8)
        self._offset = 0

    def carve(self, shape: tuple[int, ...], dtype: Any) -> AnyArray:
        dt = np.dtype(dtype)
        nbytes = dt.itemsize * math.prod(shape)
        start = self._offset
        self._offset = start + self.aligned(nbytes)
        view = self._block[start:start + nbytes].view(dt).reshape(shape)
        return cast(AnyArray, view)

    def close(self) -> None:
        self._arena.release(self._block)


# ----------------------------------------------------------------------
# Shared level-scheduling thread pool

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    """The process-wide pool for branch-parallel level execution."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            workers = min(8, os.cpu_count() or 1)
            _POOL = ThreadPoolExecutor(max_workers=max(2, workers),
                                       thread_name_prefix="plan-level")
        return _POOL


@dataclass
class LayerStep:
    """One layer of the plan: spec plus its input-independent pieces."""

    spec: LayerSpec
    in_fmts: list[QFormat]
    out_fmt: QFormat
    #: Wide accumulator format for MAC layers (conv / FC / recurrent).
    acc_fmt: QFormat | None = None
    #: Packed weights, transposed for ``columns @ weight``: one
    #: ``(Cin/g*k*k, Dout/g)`` matrix per convolution group, or a single
    #: ``(In, Out)`` matrix for dense layers.  Stored as transposed
    #: views of C-contiguous ``(Out, In)`` packs — the F-contiguous
    #: right-hand side is what numpy's integer matmul kernel wants
    #: (contiguous along the reduction axis; ~8x faster than the
    #: C-contiguous transpose copy).
    weights: list[IntArray] = field(default_factory=list)
    #: float64 copies of ``weights`` when the accumulation provably fits
    #: the 53-bit mantissa (see :func:`_float_gemm_exact`); ``None``
    #: keeps the GEMM on the int64 kernel.
    float_weights: list[FloatArray] | None = None
    #: Bias already shifted into ``acc_fmt`` (full ``Dout`` vector).
    bias_acc: IntArray | None = None
    #: Transposed recurrent weight ``(Out, Out)`` for the feedback MAC.
    recurrent_t: IntArray | None = None
    float_recurrent: FloatArray | None = None
    recurrent_acc_fmt: QFormat | None = None
    #: im2col gather indices ``(out_h*out_w, Cin/g*k*k)`` into one
    #: group's zero-padded flattened image.
    gather: IntArray | None = None
    out_h: int = 0
    out_w: int = 0
    #: Shared Approx-LUT content for sigmoid/tanh/LRN scaling.
    lut: ApproxLUTContent | None = None
    # --- filled in by the plan optimizer ---------------------------------
    #: SSA value ids: one per bottom, one for the step's result.  Blob
    #: names are reused by Caffe-style in-place layers, so liveness and
    #: scheduling run on value ids, never on names.
    in_vids: list[int] = field(default_factory=list)
    out_vid: int = -1
    #: Whether this step was folded onto its producer as an epilogue.
    fused: bool = False
    #: Whether the step's result buffer may come from the arena in
    #: output-retention mode (its value does not escape the flush).
    use_arena: bool = False
    #: Whether the step may overwrite its (single) input buffer in
    #: output-retention mode.
    inplace: bool = False


@dataclass
class PlanNode:
    """One schedulable unit: an anchor step plus fused epilogues."""

    steps: list[int]
    level: int = 0


@dataclass
class ExecutionPlan:
    """Input-independent execution state for one compiled design."""

    input_blob: str
    input_fmt: QFormat
    input_dims: tuple[int, ...]
    output_blob: str
    steps: list[LayerStep]
    blob_formats: dict[str, QFormat]
    #: ``"fused"`` (epilogue fusion + arena + level scheduling) or
    #: ``"naive"`` (one node per step, allocate-per-step kernels).
    optimize: str = "fused"
    #: How independent nodes within a level execute in output-retention
    #: mode: ``"auto"`` (threads when the host has more than one CPU),
    #: ``"always"``, or ``"never"``.
    parallel: str = "auto"
    # --- built by _analyze -----------------------------------------------
    nodes: list[PlanNode] = field(default_factory=list)
    #: Node indices grouped by topological level, in execution order.
    levels: list[list[int]] = field(default_factory=list)
    #: Blob name per value id (vid 0 is the quantized network input).
    vid_blob: list[str] = field(default_factory=list)
    #: Element count per value id (without the batch axis).
    vid_elems: list[int] = field(default_factory=list)
    #: Final value id per blob name — what a keep-all flush returns.
    final_vids: dict[str, int] = field(default_factory=dict)
    output_vid: int = -1
    #: Canonical buffer groups from in-place epilogue aliasing:
    #: canonical vid -> every vid sharing its buffer.
    aliases: dict[int, list[int]] = field(default_factory=dict)
    #: Arena-owned canonical vids to release after each level.
    release_after_level: list[list[int]] = field(default_factory=list)
    arena: BufferArena | None = None
    fused_steps: int = 0

    # ------------------------------------------------------------------
    # Construction

    @staticmethod
    def build(
        graph: NetworkGraph,
        shapes: dict[str, TensorShape],
        order: list[LayerSpec],
        quantized_weights: dict[str, dict[str, IntArray]],
        blob_formats: dict[str, QFormat],
        weight_format: QFormat,
        lut_for: Callable[[str, QFormat], ApproxLUTContent],
        *,
        optimize: str = "fused",
    ) -> "ExecutionPlan":
        if optimize not in ("fused", "naive"):
            raise SimulationError(
                f"unknown plan optimize mode '{optimize}' "
                "(expected 'fused' or 'naive')")
        data_layers = graph.inputs()
        if len(data_layers) != 1:
            raise SimulationError("execution plan expects a single input")
        input_blob = data_layers[0].tops[0]
        steps: list[LayerStep] = []
        for spec in order:
            if spec.kind is LayerKind.DATA:
                continue
            in_fmts = [blob_formats[b] for b in spec.bottoms]
            out_fmt = blob_formats[spec.tops[0]] if spec.tops else in_fmts[0]
            step = LayerStep(spec=spec, in_fmts=in_fmts, out_fmt=out_fmt)
            params = quantized_weights.get(spec.name, {})
            kind = spec.kind
            if kind.is_convolution:
                ExecutionPlan._plan_conv(step, shapes[spec.bottoms[0]].dims,
                                         params, weight_format)
            elif kind in (LayerKind.INNER_PRODUCT, LayerKind.ASSOCIATIVE,
                          LayerKind.RECURRENT):
                step.acc_fmt = accumulator_format(in_fmts[0], weight_format)
                weight = params["weight"].reshape(spec.num_output, -1)
                step.weights = [
                    np.ascontiguousarray(weight, dtype=np.int64).T]
                if _float_gemm_exact(weight.shape[1], in_fmts[0],
                                     weight_format):
                    step.float_weights = [
                        step.weights[0].astype(np.float64)]
                step.bias_acc = _bias_in_accumulator(
                    params.get("bias"), step.acc_fmt, weight_format)
                if kind is LayerKind.RECURRENT:
                    step.recurrent_t = np.ascontiguousarray(
                        params["recurrent_weight"], dtype=np.int64).T
                    step.recurrent_acc_fmt = accumulator_format(
                        out_fmt, weight_format)
                    if _float_gemm_exact(step.recurrent_t.shape[0],
                                         out_fmt, weight_format):
                        step.float_recurrent = step.recurrent_t.astype(
                            np.float64)
            elif kind in (LayerKind.SIGMOID, LayerKind.TANH):
                function = "sigmoid" if kind is LayerKind.SIGMOID else "tanh"
                step.lut = lut_for(function, out_fmt)
            elif kind is LayerKind.LRN:
                step.lut = lut_for("reciprocal_power", in_fmts[0])
            steps.append(step)
        plan = ExecutionPlan(
            input_blob=input_blob,
            input_fmt=blob_formats[input_blob],
            input_dims=shapes[input_blob].dims,
            output_blob=graph.outputs()[-1].tops[0],
            steps=steps,
            blob_formats=blob_formats,
            optimize=optimize,
        )
        plan._analyze(shapes)
        return plan

    @staticmethod
    def _plan_conv(step: LayerStep, in_dims: tuple[int, ...],
                   params: dict[str, IntArray],
                   weight_format: QFormat) -> None:
        spec = step.spec
        weight = params["weight"]
        dout = weight.shape[0]
        groups = conv_groups(spec, in_dims[0])
        cin_per_group = in_dims[0] // groups
        dout_per_group = dout // groups
        step.acc_fmt = accumulator_format(step.in_fmts[0], weight_format)
        step.weights = [
            np.ascontiguousarray(
                weight[g * dout_per_group:(g + 1) * dout_per_group]
                .reshape(dout_per_group, -1), dtype=np.int64).T
            for g in range(groups)
        ]
        if _float_gemm_exact(step.weights[0].shape[0], step.in_fmts[0],
                             weight_format):
            step.float_weights = [w.astype(np.float64)
                                  for w in step.weights]
        step.bias_acc = _bias_in_accumulator(params.get("bias"),
                                             step.acc_fmt, weight_format)
        step.gather, step.out_h, step.out_w = F.im2col_indices(
            (cin_per_group, in_dims[1], in_dims[2]),
            spec.kernel_size, spec.stride, spec.pad)

    # ------------------------------------------------------------------
    # Plan optimizer: SSA values, fusion chains, levels, liveness

    def _analyze(self, shapes: dict[str, TensorShape]) -> None:
        fused_mode = self.optimize == "fused"
        # SSA value numbering over the Caffe-style blob namespace:
        # in-place layers (bottom == top) get a fresh vid per write, so
        # reordering and liveness never confuse two versions of a name.
        vid_blob: list[str] = [self.input_blob]
        vid_elems: list[int] = [int(math.prod(self.input_dims))]
        readers: list[list[int]] = [[]]
        writer: list[int] = [-1]
        current: dict[str, int] = {self.input_blob: 0}
        for i, step in enumerate(self.steps):
            step.in_vids = [current[b] for b in step.spec.bottoms]
            for v in step.in_vids:
                readers[v].append(i)
            top = step.spec.tops[0] if step.spec.tops else ""
            step.out_vid = len(vid_blob)
            vid_blob.append(top)
            shape = shapes.get(top)
            vid_elems.append(int(math.prod(shape.dims)) if shape else 0)
            readers.append([])
            writer.append(i)
            for name in step.spec.tops:
                current[name] = step.out_vid
        self.vid_blob = vid_blob
        self.vid_elems = vid_elems
        self.final_vids = dict(current)
        self.output_vid = current[self.output_blob]

        # Epilogue fusion: greedily chain each step with the single
        # reader of its value while that reader is a legal epilogue.
        # The network-output value always terminates a chain — it must
        # survive the flush as its own buffer.
        assigned = [False] * len(self.steps)
        chains: list[list[int]] = []
        for i in range(len(self.steps)):
            if assigned[i]:
                continue
            chain = [i]
            assigned[i] = True
            while fused_mode:
                value = self.steps[chain[-1]].out_vid
                if value == self.output_vid:
                    break
                value_readers = readers[value]
                if len(value_readers) != 1:
                    break
                j = value_readers[0]
                follower = self.steps[j]
                if assigned[j] or follower.spec.kind not in _EPILOGUE_KINDS \
                        or len(follower.spec.bottoms) != 1:
                    break
                chain.append(j)
                assigned[j] = True
            chains.append(chain)
        self.fused_steps = len(self.steps) - len(chains)
        self.nodes = [PlanNode(steps=chain) for chain in chains]

        # Topological levels over nodes.  A chain's only external
        # inputs are its anchor's inputs, and every producer node's
        # anchor precedes this node's anchor, so one forward sweep
        # resolves all levels.
        node_of_step: dict[int, int] = {}
        for ni, node in enumerate(self.nodes):
            for si in node.steps:
                node_of_step[si] = ni
        for ni, node in enumerate(self.nodes):
            level = 0
            for si in node.steps:
                for v in self.steps[si].in_vids:
                    w = writer[v]
                    if w >= 0 and node_of_step[w] != ni:
                        level = max(level, self.nodes[node_of_step[w]].level + 1)
            node.level = level
        if fused_mode:
            depth = max((node.level for node in self.nodes), default=-1)
            self.levels = [[] for _ in range(depth + 1)]
            for ni, node in enumerate(self.nodes):
                self.levels[node.level].append(ni)
        else:
            # Naive plans replay the original sequential step order.
            for ni, node in enumerate(self.nodes):
                node.level = ni
            self.levels = [[ni] for ni in range(len(self.nodes))]

        # In-place epilogues and buffer aliasing (output mode only).
        # An epilogue may overwrite its producer's buffer when shapes
        # match, the producer's value does not persist (recurrent state
        # does), and the result is not the network output.
        canonical = list(range(len(vid_blob)))
        if fused_mode:
            for chain in chains:
                for prev, cur in zip(chain, chain[1:]):
                    step = self.steps[cur]
                    step.fused = True
                    producer = self.steps[prev]
                    if step.spec.kind in _INPLACE_KINDS \
                            and producer.spec.kind not in _ESCAPING_KINDS \
                            and step.out_vid != self.output_vid:
                        step.inplace = True
                        canonical[step.out_vid] = canonical[step.in_vids[0]]
        for step in self.steps:
            step.use_arena = (
                fused_mode
                and not step.inplace
                and step.spec.kind not in _ESCAPING_KINDS
                and step.out_vid != self.output_vid
            )

        self.aliases = {}
        for v, c in enumerate(canonical):
            self.aliases.setdefault(c, []).append(v)

        # Liveness: each arena-owned canonical buffer is released after
        # the last level that reads any of its aliases.
        self.release_after_level = [[] for _ in self.levels]
        if fused_mode:
            self.arena = BufferArena()
            for c, group in self.aliases.items():
                if c == 0:
                    backed = True  # the quantized input lives on the arena
                else:
                    backed = self.steps[writer[c]].use_arena
                if not backed:
                    continue
                if c == 0:
                    last = 0
                else:
                    last = self.nodes[node_of_step[writer[c]]].level
                for v in group:
                    for r in readers[v]:
                        last = max(last, self.nodes[node_of_step[r]].level)
                self.release_after_level[last].append(c)

    # ------------------------------------------------------------------
    # Introspection

    def stats(self) -> dict[str, int | str]:
        """Optimizer and arena counters for metrics and bench tables."""
        arena = self.arena.snapshot() if self.arena is not None else {}
        return {
            "optimize": self.optimize,
            "total_steps": len(self.steps),
            "fused_steps": self.fused_steps,
            "levels": len(self.levels),
            "max_level_width": max((len(level) for level in self.levels),
                                   default=0),
            "peak_arena_bytes": arena.get("peak_bytes", 0),
            "arena_pool_bytes": arena.get("pool_bytes", 0),
        }

    def peak_alloc_bytes(self, batch_size: int) -> int:
        """Peak working-set bytes for one flush of ``batch_size``.

        Fused plans report the arena's measured high-water mark once a
        flush has run (warm it first).  Naive plans materialize every
        value for the whole flush, so their footprint is the analytic
        sum of all int64 value buffers.
        """
        if self.optimize == "fused" and self.arena is not None \
                and self.arena.peak_bytes > 0:
            return self.arena.peak_bytes
        return 8 * batch_size * sum(self.vid_elems)

    def summary(self) -> str:
        stats = self.stats()
        return (
            f"plan[{self.optimize}] steps={stats['total_steps']} "
            f"fused={stats['fused_steps']} levels={stats['levels']} "
            f"width={stats['max_level_width']} "
            f"peak_arena_bytes={stats['peak_arena_bytes']}"
        )

    # ------------------------------------------------------------------
    # Batched execution

    def forward_batch_raw(
        self,
        inputs: AnyArray,
        state: dict[str, IntArray],
        *,
        keep: str = "all",
        parallel: str | None = None,
    ) -> dict[str, IntArray]:
        """One vectorized forward pass; raw integer blobs, leading ``N``.

        ``state`` is the executor's recurrent-state dict; batched entries
        carry the batch dimension ``(N, Out)`` and evolve per sample.

        ``keep="all"`` materializes and returns every blob (the
        inspection contract: allocate-per-step kernels, no arena, no
        in-place writes).  ``keep="output"`` is the serving hot path:
        only the network output survives the flush, intermediate values
        live on the plan's arena and are recycled at their last-use
        level, and same-shape epilogues run in place.  Both retention
        modes and both optimize modes produce bit-identical values.

        ``parallel`` overrides the plan's level-scheduling mode for this
        call (``"auto"``/``"always"``/``"never"``); it only applies to
        ``keep="output"`` on fused plans.
        """
        if keep not in ("all", "output"):
            raise SimulationError(
                f"unknown retention mode '{keep}' (expected 'all' or 'output')")
        hot = keep == "output" and self.optimize == "fused"
        arena = self.arena if hot else None
        values: list[AnyArray | None] = [None] * len(self.vid_blob)
        if arena is not None:
            source = np.asarray(inputs, dtype=np.float64)
            buffer = arena.take(source.shape, np.int64)
            values[0] = quantize_to_ints(source, self.input_fmt, out=buffer)
        else:
            values[0] = quantize_to_ints(inputs, self.input_fmt)
        mode = parallel if parallel is not None else self.parallel
        for index, level in enumerate(self.levels):
            if hot and len(level) > 1 and self._level_parallel(mode):
                pool = _shared_pool()
                futures: list[Future[None]] = [
                    pool.submit(self._run_node, ni, values, state, arena)
                    for ni in level
                ]
                for future in futures:
                    future.result()
            else:
                for ni in level:
                    self._run_node(ni, values, state, arena)
            if arena is not None:
                for c in self.release_after_level[index]:
                    held = values[c]
                    if held is not None:
                        arena.release(held)
                    for v in self.aliases.get(c, [c]):
                        values[v] = None
        if keep == "output":
            output = values[self.output_vid]
            if output is None:
                raise SimulationError(
                    f"plan did not produce output blob '{self.output_blob}'")
            return {self.output_blob: cast(IntArray, output)}
        result: dict[str, IntArray] = {}
        for name, vid in self.final_vids.items():
            held = values[vid]
            if held is not None:
                result[name] = cast(IntArray, held)
        return result

    @staticmethod
    def _level_parallel(mode: str) -> bool:
        if mode == "never":
            return False
        if mode == "always":
            return True
        return (os.cpu_count() or 1) > 1

    def _run_node(self, ni: int, values: list[AnyArray | None],
                  state: dict[str, IntArray],
                  arena: BufferArena | None) -> None:
        for si in self.nodes[ni].steps:
            step = self.steps[si]
            raw_inputs = [cast(AnyArray, values[v]) for v in step.in_vids]
            result = self._run_step(
                step, raw_inputs, state,
                arena=arena if step.use_arena else None,
                inplace=step.inplace and arena is not None,
            )
            values[step.out_vid] = result

    def _run_step(self, step: LayerStep, raw_inputs: list[AnyArray],
                  state: dict[str, IntArray],
                  arena: BufferArena | None = None,
                  inplace: bool = False) -> IntArray:
        spec = step.spec
        kind = spec.kind
        first = raw_inputs[0] if raw_inputs else None
        first_fmt = step.in_fmts[0] if step.in_fmts else step.out_fmt
        out_fmt = step.out_fmt

        if kind.is_convolution:
            return self._conv(step, cast(IntArray, first), arena)
        if kind is LayerKind.INNER_PRODUCT or kind is LayerKind.ASSOCIATIVE:
            return self._dense(step, cast(IntArray, first), arena)
        if kind is LayerKind.RECURRENT:
            return self._recurrent(step, cast(IntArray, first), state)
        if kind is LayerKind.POOLING:
            return self._pool(step, cast(IntArray, first), arena)
        if kind is LayerKind.RELU:
            assert first is not None
            if inplace:
                np.maximum(first, 0, out=first)
                requantize(first, first_fmt, out_fmt, out=first)
                return cast(IntArray, first)
            if arena is not None:
                out = cast(IntArray, arena.take(first.shape, np.int64))
                requantize(np.maximum(first, 0), first_fmt, out_fmt, out=out)
                return out
            return requantize(np.maximum(first, 0), first_fmt, out_fmt)
        if kind in (LayerKind.SIGMOID, LayerKind.TANH):
            assert first is not None and step.lut is not None
            values = step.lut.evaluate(dequantize(first, first_fmt))
            if inplace:
                quantize_to_ints(values, out_fmt, out=first)
                return cast(IntArray, first)
            if arena is not None:
                out = cast(IntArray, arena.take(first.shape, np.int64))
                return cast(IntArray,
                            quantize_to_ints(values, out_fmt, out=out))
            return quantize_to_ints(values, out_fmt)
        if kind is LayerKind.LRN:
            return self._lrn(step, cast(IntArray, first), arena)
        if kind is LayerKind.DROPOUT:
            assert first is not None
            if inplace:
                requantize(first, first_fmt, out_fmt, out=first)
                return cast(IntArray, first)
            if arena is not None:
                out = cast(IntArray, arena.take(first.shape, np.int64))
                return cast(IntArray,
                            requantize(first, first_fmt, out_fmt, out=out))
            return requantize(first, first_fmt, out_fmt)
        if kind is LayerKind.SOFTMAX:
            assert first is not None
            probabilities = F.softmax_batch(dequantize(first, first_fmt))
            if arena is not None:
                out = cast(IntArray,
                           arena.take(probabilities.shape, np.int64))
                return cast(IntArray,
                            quantize_to_ints(probabilities, out_fmt, out=out))
            return quantize_to_ints(probabilities, out_fmt)
        if kind is LayerKind.CLASSIFIER:
            return cast(IntArray,
                        F.argmax_classifier_batch(cast(IntArray, first),
                                                  spec.top_k))
        if kind is LayerKind.CONCAT:
            return self._concat(step, raw_inputs, arena)
        if kind is LayerKind.ELTWISE:
            return self._eltwise(step, raw_inputs, arena)
        raise SimulationError(f"batched execution has no rule for {kind}")

    def _conv(self, step: LayerStep, raw: IntArray,
              arena: BufferArena | None) -> IntArray:
        spec = step.spec
        count, channels = raw.shape[0], raw.shape[1]
        groups = conv_groups(spec, channels)
        cin_per_group = channels // groups
        height_p = raw.shape[2] + 2 * spec.pad
        width_p = raw.shape[3] + 2 * spec.pad
        use_float = step.float_weights is not None
        assert step.acc_fmt is not None and step.gather is not None
        if arena is None:
            padded = F.pad2d(raw, spec.pad)
            # (N, groups, Cin/g * Hp * Wp): one flat image slab per group.
            flat = padded.reshape(count, groups,
                                  cin_per_group * padded.shape[2]
                                  * padded.shape[3])
            if use_float:
                # Convert the (small) image slab once; the gathered
                # columns come out float64 and the GEMM goes through
                # BLAS.
                flat = flat.astype(np.float64)
            group_outputs = []
            offset = 0
            for g, weight_t in enumerate(step.weights):
                dout_per_group = weight_t.shape[1]
                columns = flat[:, g][:, step.gather]  # (N, P, Cin/g*k*k)
                if use_float:
                    assert step.float_weights is not None
                    reduce = columns.shape[-1]
                    acc = (columns.reshape(-1, reduce)
                           @ step.float_weights[g]).astype(np.int64)
                    acc = acc.reshape(count, -1, dout_per_group)
                else:
                    acc = columns @ weight_t          # (N, P, Dout/g)
                if step.bias_acc is not None:
                    acc = acc + step.bias_acc[offset:offset + dout_per_group]
                group_outputs.append(
                    acc.transpose(0, 2, 1).reshape(count, dout_per_group,
                                                   step.out_h, step.out_w))
                offset += dout_per_group
            acc = np.concatenate(group_outputs, axis=1)
            return requantize(acc, step.acc_fmt, step.out_fmt)
        # Arena path: identical arithmetic, all GEMM/gather scratch
        # carved out of one pooled block and the result buffer drawn
        # from (and returned to) the pool.
        patches = step.out_h * step.out_w
        kernel_elems = step.gather.shape[1]
        dout_per_group = step.weights[0].shape[1]
        dout = dout_per_group * groups
        if spec.kernel_size == 1 and spec.stride == 1 and spec.pad == 0:
            # Pointwise convolution: im2col is the identity, so skip the
            # gather entirely and GEMM ``(Dout/g, Cin/g) @ (N, Cin/g, P)``
            # straight into output layout.  Summation order differs from
            # the gathered GEMM but every intermediate is exact (the
            # float path is only enabled under the 2^53 bound), so the
            # integers are identical.
            return self._pointwise_conv(step, raw, arena, count, channels,
                                        groups, dout)
        group_bytes = 8 * count * patches * dout_per_group
        column_bytes = 8 * count * patches * kernel_elems
        need = _Scratch.aligned(column_bytes) \
            + _Scratch.aligned(8 * count * dout * patches) \
            + _Scratch.aligned(group_bytes)
        if use_float:
            need += _Scratch.aligned(8 * count * channels
                                     * height_p * width_p) \
                + _Scratch.aligned(group_bytes)
        scratch = _Scratch(arena, need)
        float_acc: AnyArray | None = None
        if use_float:
            # Pad straight into the float slab: one write pass instead
            # of int-pad-then-convert.
            float_pad = scratch.carve(
                (count, channels, height_p, width_p), np.float64)
            if spec.pad:
                float_pad.fill(0.0)
                float_pad[:, :, spec.pad:height_p - spec.pad,
                          spec.pad:width_p - spec.pad] = raw
            else:
                float_pad[...] = raw
            source: AnyArray = float_pad.reshape(
                count, groups, cin_per_group * height_p * width_p)
            float_acc = scratch.carve((count, patches, dout_per_group),
                                      np.float64)
        else:
            source = F.pad2d(raw, spec.pad).reshape(
                count, groups, cin_per_group * height_p * width_p)
        columns_buf = scratch.carve((count, patches, kernel_elems),
                                    np.float64 if use_float else np.int64)
        acc_full = scratch.carve((count, dout, patches), np.int64)
        acc_group = scratch.carve((count, patches, dout_per_group), np.int64)
        offset = 0
        for g in range(groups):
            np.take(source[:, g], step.gather, axis=1, out=columns_buf)
            if use_float:
                assert step.float_weights is not None \
                    and float_acc is not None
                np.matmul(columns_buf, step.float_weights[g], out=float_acc)
                np.copyto(acc_group, float_acc, casting="unsafe")
            else:
                np.matmul(columns_buf, step.weights[g], out=acc_group)
            if step.bias_acc is not None:
                acc_group += step.bias_acc[offset:offset + dout_per_group]
            np.copyto(acc_full[:, offset:offset + dout_per_group, :],
                      acc_group.transpose(0, 2, 1))
            offset += dout_per_group
        out = cast(IntArray, arena.take(
            (count, dout, step.out_h, step.out_w), np.int64))
        requantize(acc_full.reshape(count, dout, step.out_h, step.out_w),
                   step.acc_fmt, step.out_fmt, out=out)
        scratch.close()
        return out

    def _pointwise_conv(self, step: LayerStep, raw: IntArray,
                        arena: BufferArena, count: int, channels: int,
                        groups: int, dout: int) -> IntArray:
        """1x1 / stride-1 / pad-0 convolution without im2col.

        The patch axis is the flattened spatial axis, so the GEMM runs
        directly on the ``(N, Cin/g, H*W)`` input slab and the result
        lands in output layout ``(N, Dout, H*W)`` with no gather, no
        transpose pass and no concatenation.
        """
        assert step.acc_fmt is not None
        patches = step.out_h * step.out_w
        cin_per_group = channels // groups
        dout_per_group = dout // groups
        use_float = step.float_weights is not None
        data = raw.reshape(count, groups, cin_per_group, patches)
        need = _Scratch.aligned(8 * count * dout * patches)
        if use_float:
            need += _Scratch.aligned(8 * raw.size) \
                + _Scratch.aligned(8 * count * dout_per_group * patches)
        scratch = _Scratch(arena, need)
        acc = cast(IntArray, scratch.carve((count, dout, patches), np.int64))
        if use_float:
            assert step.float_weights is not None
            float_data = scratch.carve(
                (count, groups, cin_per_group, patches), np.float64)
            np.copyto(float_data, data)
            float_acc = scratch.carve((count, dout_per_group, patches),
                                      np.float64)
            for g in range(groups):
                # (Dout/g, Cin/g) @ (N, Cin/g, P) -> (N, Dout/g, P); the
                # stored weight is the (Cin/g, Dout/g) operand, so its
                # transpose is the row-major kernel matrix.
                np.matmul(step.float_weights[g].T, float_data[:, g],
                          out=float_acc)
                np.copyto(acc[:, g * dout_per_group:
                              (g + 1) * dout_per_group],
                          float_acc, casting="unsafe")
        else:
            for g in range(groups):
                np.matmul(step.weights[g].T, data[:, g],
                          out=acc[:, g * dout_per_group:
                                  (g + 1) * dout_per_group])
        if step.bias_acc is not None:
            acc += step.bias_acc[:, None]
        out = cast(IntArray, arena.take(
            (count, dout, step.out_h, step.out_w), np.int64))
        requantize(acc, step.acc_fmt, step.out_fmt,
                   out=out.reshape(count, dout, patches))
        scratch.close()
        return out

    def _dense(self, step: LayerStep, raw: IntArray,
               arena: BufferArena | None) -> IntArray:
        assert step.acc_fmt is not None
        flat = raw.reshape(raw.shape[0], -1)
        if arena is None:
            if step.float_weights is not None:
                acc = (flat.astype(np.float64)
                       @ step.float_weights[0]).astype(np.int64)
            else:
                acc = flat @ step.weights[0]
            if step.bias_acc is not None:
                acc = acc + step.bias_acc
            return requantize(acc, step.acc_fmt, step.out_fmt)
        count = flat.shape[0]
        dout = step.weights[0].shape[1]
        acc_bytes = 8 * count * dout
        need = _Scratch.aligned(acc_bytes)
        if step.float_weights is not None:
            need += _Scratch.aligned(8 * flat.size) \
                + _Scratch.aligned(acc_bytes)
        scratch = _Scratch(arena, need)
        acc_buf = cast(IntArray, scratch.carve((count, dout), np.int64))
        if step.float_weights is not None:
            float_flat = scratch.carve(flat.shape, np.float64)
            np.copyto(float_flat, flat)
            float_acc = scratch.carve((count, dout), np.float64)
            np.matmul(float_flat, step.float_weights[0], out=float_acc)
            np.copyto(acc_buf, float_acc, casting="unsafe")
        else:
            np.matmul(flat, step.weights[0], out=acc_buf)
        if step.bias_acc is not None:
            acc_buf += step.bias_acc
        out = cast(IntArray, arena.take((count, dout), np.int64))
        requantize(acc_buf, step.acc_fmt, step.out_fmt, out=out)
        scratch.close()
        return out

    def _recurrent(self, step: LayerStep, raw: IntArray,
                   state: dict[str, IntArray]) -> IntArray:
        # Recurrent results persist in ``state`` across flushes, so this
        # kernel always allocates off-arena.
        drive = self._dense(step, raw, None)
        previous = state.get(step.spec.name)
        if previous is not None:
            if previous.shape != drive.shape:
                raise SimulationError(
                    f"recurrent state for '{step.spec.name}' has shape "
                    f"{previous.shape}, batch expects {drive.shape}; call "
                    "reset_state() between batch shapes"
                )
            assert step.recurrent_acc_fmt is not None
            if step.float_recurrent is not None:
                echo = (previous.astype(np.float64)
                        @ step.float_recurrent).astype(np.int64)
            else:
                echo = previous @ step.recurrent_t
            feedback = requantize(echo, step.recurrent_acc_fmt,
                                  step.out_fmt)
            drive = np.clip(drive + feedback, step.out_fmt.min_int,
                            step.out_fmt.max_int)
        state[step.spec.name] = drive
        return drive

    def _pool(self, step: LayerStep, raw: IntArray,
              arena: BufferArena | None) -> IntArray:
        spec = step.spec
        in_fmt, out_fmt = step.in_fmts[0], step.out_fmt
        # The arena path skips the defensive astype copies (blobs are
        # always int64 already); the values are unchanged either way.
        if arena is not None and raw.dtype == np.int64:
            source = raw
        else:
            source = raw.astype(np.int64)
        if spec.pool_method is PoolMethod.MAX:
            count, channels, height, width = source.shape
            stride, kernel = spec.stride, spec.kernel_size
            # Caffe ceil-mode output size (see pool_windows_batch).
            out_h = -(-(height - kernel) // stride) + 1
            out_w = -(-(width - kernel) // stride) + 1
            fits = ((out_h - 1) * stride + kernel <= height
                    and (out_w - 1) * stride + kernel <= width)
            if arena is not None and spec.pad == 0 and fits:
                # Unpadded, non-overflowing max pooling reduces k*k
                # strided views of the input instead of materializing
                # the windows tensor: the max over identical window
                # members is unchanged.
                out = cast(IntArray, arena.take(
                    (count, channels, out_h, out_w), np.int64))
                span_h = stride * (out_h - 1) + 1
                span_w = stride * (out_w - 1) + 1
                for di in range(kernel):
                    for dj in range(kernel):
                        window = source[:, :, di:di + span_h:stride,
                                        dj:dj + span_w:stride]
                        if di == 0 and dj == 0:
                            np.copyto(out, window)
                        else:
                            np.maximum(out, window, out=out)
                return cast(IntArray,
                            requantize(out, in_fmt, out_fmt, out=out))
            # Padding never wins the max: pad with each sample's minimum.
            pad_values = raw.min(axis=(1, 2, 3)) \
                if spec.pad and raw.size else 0
            windows, _, _ = F.pool_windows_batch(
                source, spec.kernel_size, spec.stride, spec.pad, pad_values)
            pooled = windows.max(axis=(4, 5))
            if arena is not None:
                out = cast(IntArray, arena.take(pooled.shape, np.int64))
                return cast(IntArray,
                            requantize(pooled, in_fmt, out_fmt, out=out))
            return requantize(pooled, in_fmt, out_fmt)
        windows, _, _ = F.pool_windows_batch(
            source, spec.kernel_size, spec.stride, spec.pad, 0)
        sums = windows.sum(axis=(4, 5))
        if arena is None or sums.dtype != np.int64:
            sums = sums.astype(np.int64)
        area = spec.kernel_size * spec.kernel_size
        if _is_power_of_two(area):
            shift = area.bit_length() - 1
            averaged = (sums + (1 << (shift - 1))) >> np.int64(shift)
        else:
            reciprocal = int(round((1 << 15) / area))
            averaged = (sums * reciprocal + (1 << 14)) >> np.int64(15)
        if arena is not None:
            out = cast(IntArray, arena.take(averaged.shape, np.int64))
            return cast(IntArray,
                        requantize(averaged, in_fmt, out_fmt, out=out))
        averaged = averaged.astype(np.int64)
        return requantize(averaged, in_fmt, out_fmt)

    def _lrn(self, step: LayerStep, raw: IntArray,
             arena: BufferArena | None) -> IntArray:
        spec = step.spec
        assert step.lut is not None
        values = dequantize(raw, step.in_fmts[0])
        channels = values.shape[1]
        half = spec.local_size // 2
        squared = values ** 2
        scale_arg = np.zeros_like(values)
        for c in range(channels):
            lo, hi = max(0, c - half), min(channels, c + half + 1)
            scale_arg[:, c] = (spec.alpha / spec.local_size) \
                * squared[:, lo:hi].sum(axis=1)
        scale = step.lut.evaluate(scale_arg)
        if arena is not None:
            out = cast(IntArray, arena.take(raw.shape, np.int64))
            return cast(IntArray,
                        quantize_to_ints(values * scale, step.out_fmt,
                                         out=out))
        return quantize_to_ints(values * scale, step.out_fmt)

    def _concat(self, step: LayerStep, raw_inputs: list[AnyArray],
                arena: BufferArena | None) -> IntArray:
        out_fmt = step.out_fmt
        if arena is None:
            aligned = [requantize(raw, fmt, out_fmt)
                       for raw, fmt in zip(raw_inputs, step.in_fmts)]
            if all(a.ndim == 4 for a in aligned):
                return cast(IntArray, np.concatenate(aligned, axis=1))
            count = aligned[0].shape[0]
            return cast(IntArray, np.concatenate(
                [a.reshape(count, -1) for a in aligned], axis=1))
        count = raw_inputs[0].shape[0]
        if all(a.ndim == 4 for a in raw_inputs):
            widths = [a.shape[1] for a in raw_inputs]
            height, width = raw_inputs[0].shape[2], raw_inputs[0].shape[3]
            out = cast(IntArray, arena.take(
                (count, sum(widths), height, width), np.int64))
            offset = 0
            for raw, fmt, channels in zip(raw_inputs, step.in_fmts, widths):
                requantize(raw, fmt, out_fmt,
                           out=out[:, offset:offset + channels])
                offset += channels
            return out
        flats = [a.reshape(count, -1) for a in raw_inputs]
        out = cast(IntArray, arena.take(
            (count, sum(f.shape[1] for f in flats)), np.int64))
        offset = 0
        for flat, fmt in zip(flats, step.in_fmts):
            size = flat.shape[1]
            requantize(flat, fmt, out_fmt, out=out[:, offset:offset + size])
            offset += size
        return out

    def _eltwise(self, step: LayerStep, raw_inputs: list[AnyArray],
                 arena: BufferArena | None) -> IntArray:
        out_fmt = step.out_fmt
        if arena is None:
            # Bit-exact mirror of the per-sample rule in
            # repro.sim.quantized: requantize every branch to the output
            # format, then saturating integer sum.
            aligned = [requantize(raw, fmt, out_fmt).astype(np.int64)
                       for raw, fmt in zip(raw_inputs, step.in_fmts)]
            total = aligned[0]
            for other in aligned[1:]:
                total = np.clip(total + other, out_fmt.min_int,
                                out_fmt.max_int)
            return cast(IntArray, total)
        out = cast(IntArray, arena.take(raw_inputs[0].shape, np.int64))
        requantize(raw_inputs[0], step.in_fmts[0], out_fmt, out=out)
        scratch = cast(IntArray, arena.take(raw_inputs[0].shape, np.int64))
        for raw, fmt in zip(raw_inputs[1:], step.in_fmts[1:]):
            requantize(raw, fmt, out_fmt, out=scratch)
            np.add(out, scratch, out=out)
            np.clip(out, out_fmt.min_int, out_fmt.max_int, out=out)
        arena.release(scratch)
        return out
