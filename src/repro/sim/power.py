"""Activity-based energy accounting.

Energy of one forward propagation = static power x runtime + per-event
dynamic energies (MACs, on-chip buffer bytes, DRAM bytes).  The per-event
coefficients live on the :class:`~repro.devices.device.Device`; the
design's occupied LUTs add clock-tree/control power proportional to
area, which is why the large-budget DB-L draws more watts than DB (paper
Fig. 9 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import Device
from repro.errors import SimulationError
from repro.nngen.design import AcceleratorDesign


@dataclass
class EnergyReport:
    """Energy breakdown of one run."""

    time_s: float
    static_j: float
    mac_j: float
    sram_j: float
    dram_j: float

    @property
    def dynamic_j(self) -> float:
        return self.mac_j + self.sram_j + self.dram_j

    @property
    def total_j(self) -> float:
        return self.static_j + self.dynamic_j

    @property
    def average_power_w(self) -> float:
        if self.time_s <= 0:
            return 0.0
        return self.total_j / self.time_s

    def __str__(self) -> str:
        return (
            f"{self.total_j * 1e3:.3f} mJ "
            f"(static {self.static_j * 1e3:.3f}, mac {self.mac_j * 1e3:.3f}, "
            f"sram {self.sram_j * 1e3:.3f}, dram {self.dram_j * 1e3:.3f})"
        )


class EnergyModel:
    """Integrates activity counters into an :class:`EnergyReport`."""

    def __init__(self, device: Device, design: AcceleratorDesign | None = None,
                 word_bytes: int = 2) -> None:
        self.device = device
        self.word_bytes = word_bytes
        occupied_lut = design.resource_report().lut if design is not None else 0
        self.static_power_w = (device.static_power_w
                               + device.power_per_klut * occupied_lut / 1000.0)
        self.reset()

    def reset(self) -> None:
        self.macs = 0
        self.sram_words = 0
        self.dram_words = 0

    def count_phase(self, macs: int, sram_words: int, dram_words: int) -> None:
        if min(macs, sram_words, dram_words) < 0:
            raise SimulationError("negative activity counts")
        self.macs += macs
        self.sram_words += sram_words
        self.dram_words += dram_words

    def report(self, cycles: int) -> EnergyReport:
        if cycles < 0:
            raise SimulationError("negative cycle count")
        time_s = cycles / self.device.clock_hz
        return EnergyReport(
            time_s=time_s,
            static_j=self.static_power_w * time_s,
            mac_j=self.macs * self.device.energy_per_mac,
            sram_j=self.sram_words * self.word_bytes
            * self.device.energy_per_sram_byte,
            dram_j=self.dram_words * self.word_bytes
            * self.device.energy_per_dram_byte,
        )
