"""A minimal discrete-event simulation kernel.

Events are ``(time, sequence, callback)`` triples in a heap; callbacks
may schedule further events.  Time is in clock cycles (integers), but
any monotonic number works.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class EventQueue:
    """A deterministic event queue.

    Ties at the same timestamp fire in scheduling order, which keeps the
    simulator reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now: float = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` after the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        callback()
        self._processed += 1
        return True

    def run(self, max_events: int = 10_000_000) -> float:
        """Run to quiescence; returns the final time."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; "
                    "likely a scheduling loop"
                )
        return self.now
