"""Cycle-faithful AGU hardware model.

A Python mirror of the Verilog AGU template in
:mod:`repro.rtl.templates`: the same two nested counters, the same
pattern-table fields, stepped one clock at a time.  Property tests drive
this model with compiled :class:`~repro.compiler.patterns.AccessPattern`
tables and check the emitted address stream equals the pattern's
arithmetic expansion — the bridge between the compiler's view and the
RTL's view of the same FSM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.patterns import AccessPattern
from repro.errors import SimulationError


@dataclass
class AGUHardwareModel:
    """The template AGU's sequential logic, clock by clock."""

    patterns: list[AccessPattern]
    #: Which template fields the reduced hardware keeps.
    has_stride: bool = True
    has_outer: bool = True

    # Architectural registers (mirroring the Verilog regs).
    running: bool = False
    done: bool = False
    addr: int = 0
    row_base: int = 0
    x_count: int = 0
    y_count: int = 0
    _selected: int = 0
    emitted: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.patterns:
            raise SimulationError("AGU model needs at least one pattern")
        for pattern in self.patterns:
            if not self.has_stride and pattern.x_length > 1 \
                    and pattern.stride != 1:
                raise SimulationError(
                    "pattern needs the stride field the hardware dropped"
                )
            if not self.has_outer and pattern.y_length > 1:
                raise SimulationError(
                    "pattern needs the outer loop the hardware dropped"
                )

    # -- table fields ----------------------------------------------------

    def _tab(self, index: int) -> AccessPattern:
        try:
            return self.patterns[index]
        except IndexError:
            raise SimulationError(
                f"pattern select {index} outside table of "
                f"{len(self.patterns)}"
            ) from None

    # -- clocked behaviour -------------------------------------------------

    def reset(self) -> None:
        self.running = False
        self.done = False
        self.addr = 0
        self.row_base = 0
        self.x_count = 0
        self.y_count = 0
        self.emitted = []

    def step(self, event_trigger: bool = False, pattern_select: int = 0,
             stall: bool = False) -> int | None:
        """One clock edge; returns the address emitted this cycle (if any).

        Mirrors the template's priority: trigger (when idle) loads the
        selected pattern; while running and not stalled, the inner
        counter advances, wrapping into the outer counter; the terminal
        wrap drops ``running`` and pulses ``done``.
        """
        emitted: int | None = None
        if event_trigger and not self.running:
            self._selected = pattern_select
            pattern = self._tab(pattern_select)
            self.running = True
            self.done = False
            self.addr = pattern.start_address
            self.row_base = pattern.start_address
            self.x_count = 0
            self.y_count = 0
            return None
        if self.running and not stall:
            pattern = self._tab(self._selected)
            # address_valid is high this cycle: the current addr goes out.
            emitted = self.addr
            self.emitted.append(self.addr)
            stride = pattern.stride if self.has_stride else 1
            if self.x_count + 1 < pattern.x_length:
                self.x_count += 1
                self.addr += stride
            elif self.has_outer and self.y_count + 1 < pattern.y_length:
                self.y_count += 1
                self.x_count = 0
                self.row_base += pattern.offset
                self.addr = self.row_base
            else:
                self.running = False
                self.done = True
        else:
            self.done = False
        return emitted

    def run_pattern(self, pattern_select: int, max_cycles: int = 1_000_000) -> list[int]:
        """Trigger one pattern and run it to completion."""
        before = len(self.emitted)
        self.step(event_trigger=True, pattern_select=pattern_select)
        cycles = 0
        while self.running:
            self.step()
            cycles += 1
            if cycles > max_cycles:
                raise SimulationError("AGU never finished its pattern")
        return self.emitted[before:]


def verify_pattern_on_hardware(pattern: AccessPattern) -> bool:
    """The compiler/RTL equivalence check for one pattern."""
    model = AGUHardwareModel(
        patterns=[pattern],
        has_stride=("stride" in pattern.fields_used()
                    or pattern.stride == 1),
        has_outer="y_length" in pattern.fields_used(),
    )
    return model.run_pattern(0) == pattern.expand()
