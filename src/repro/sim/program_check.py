"""Control-program verification on the hardware models.

Walks a compiled :class:`~repro.compiler.program.ControlProgram` state by
state, replays every AGU pattern each state selects on the
cycle-faithful :class:`~repro.sim.agu_model.AGUHardwareModel`, and checks

* each replayed stream equals the compiler's arithmetic expansion,
* main-AGU streams stay inside the DRAM map,
* the per-state word counts match the fold's declared traffic.

This is the repository's stand-in for the paper's "RTL-level simulation
of forward-propagation ... to verify the timing and function of the
generated accelerators" (§4.1) at the control-path level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.program import ControlProgram
from repro.errors import SimulationError
from repro.sim.agu_model import AGUHardwareModel


@dataclass
class ProgramCheckReport:
    """Outcome of verifying one control program."""

    states_checked: int = 0
    patterns_replayed: int = 0
    words_streamed: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise SimulationError(
                "program check failed:\n" + "\n".join(self.errors[:10])
            )


def _replay_table(table, label: str, report: ProgramCheckReport,
                  dram_top: int | None = None) -> None:
    if not table:
        return
    model = AGUHardwareModel(patterns=list(table))
    for index, pattern in enumerate(table):
        stream = model.run_pattern(index)
        expected = pattern.expand()
        report.patterns_replayed += 1
        report.words_streamed += len(stream)
        if stream != expected:
            report.errors.append(
                f"{label} pattern {index}: hardware stream diverges "
                f"(first {stream[:4]} vs {expected[:4]})"
            )
        if dram_top is not None and stream and max(stream) >= dram_top:
            report.errors.append(
                f"{label} pattern {index}: address {max(stream)} outside "
                f"the {dram_top}-element DRAM map"
            )


def verify_program(program: ControlProgram) -> ProgramCheckReport:
    """Replay every compiled pattern of every coordinator state."""
    report = ProgramCheckReport()
    dram_top = program.memory_map.total_elements

    _replay_table(program.coordinator.main_table, "main", report,
                  dram_top=dram_top)
    _replay_table(program.coordinator.data_table, "data", report)
    _replay_table(program.coordinator.weight_table, "weight", report)

    # Per-state cross-checks: selected patterns exist and their word
    # counts match the fold's declared traffic.
    for state in program.coordinator.states:
        report.states_checked += 1
        plan = program.plan_for(state.layer, state.phase_index)
        main_words = sum(
            program.coordinator.main_table[i].footprint
            for i in state.main_patterns
        )
        declared = plan.dram_read_words() + plan.dram_write_words()
        if main_words != declared:
            report.errors.append(
                f"state {state.index} ({state.event}): main patterns move "
                f"{main_words} words, the fold declares {declared}"
            )
        for table, ids in (
            (program.coordinator.data_table, state.data_patterns),
            (program.coordinator.weight_table, state.weight_patterns),
        ):
            for pattern_id in ids:
                if not 0 <= pattern_id < len(table):
                    report.errors.append(
                        f"state {state.index}: pattern id {pattern_id} "
                        f"outside its table"
                    )
    return report
