"""Accelerator simulator substrate.

Stands in for the paper's Zynq board: an event-driven cycle-level model
of the generated accelerator executing its compiled control program.
Three cooperating parts:

* :mod:`repro.sim.quantized` — bit-level functional execution: the exact
  fixed-point + Approx-LUT arithmetic the datapath performs,
* :mod:`repro.sim.accel` — the timing model: fold phases with
  double-buffered DRAM transfers over an AXI-like port
  (:mod:`repro.sim.memory`) and datapath beats
  (:mod:`repro.sim.datapath`), sequenced by an event kernel
  (:mod:`repro.sim.events`),
* :mod:`repro.sim.power` — activity-based energy accounting.
"""

from repro.sim.events import EventQueue
from repro.sim.memory import DRAMModel
from repro.sim.quantized import QuantizedExecutor
from repro.sim.power import EnergyModel, EnergyReport
from repro.sim.accel import AcceleratorSimulator, SimulationResult

__all__ = [
    "EventQueue",
    "DRAMModel",
    "QuantizedExecutor",
    "EnergyModel",
    "EnergyReport",
    "AcceleratorSimulator",
    "SimulationResult",
]
