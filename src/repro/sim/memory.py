"""External-memory timing model.

The generated accelerator reaches the board DRAM through AXI switches
(paper §4.1).  The model is a bandwidth/latency pipe: a burst of ``n``
bytes costs the fixed first-beat latency plus ``n / bytes_per_cycle``
transfer cycles; independent bursts within one fold phase are assumed
pipelined, so only distinct patterns re-pay the latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import Device
from repro.errors import SimulationError


@dataclass(frozen=True)
class DRAMModel:
    """Cycle cost model of the off-chip memory port."""

    bytes_per_cycle: float
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise SimulationError("DRAM bandwidth must be positive")
        if self.latency_cycles < 0:
            raise SimulationError("DRAM latency cannot be negative")

    @staticmethod
    def for_device(device: Device) -> "DRAMModel":
        return DRAMModel(
            bytes_per_cycle=device.dram_bandwidth / device.clock_hz,
            latency_cycles=device.dram_latency_cycles,
        )

    def burst_cycles(self, n_bytes: int, bursts: int = 1) -> int:
        """Cycles to move ``n_bytes`` split over ``bursts`` bursts."""
        if n_bytes < 0 or bursts < 0:
            raise SimulationError("negative transfer size")
        if n_bytes == 0:
            return 0
        transfer = -(-n_bytes // self.bytes_per_cycle)
        return int(self.latency_cycles * max(1, bursts) + transfer)


@dataclass
class BufferState:
    """Occupancy tracking of one on-chip buffer bank pair."""

    capacity_words: int
    occupied_words: int = 0

    def fill(self, words: int) -> None:
        if words < 0:
            raise SimulationError("cannot fill a negative word count")
        if self.occupied_words + words > self.capacity_words:
            raise SimulationError(
                f"buffer overflow: {self.occupied_words} + {words} > "
                f"{self.capacity_words}"
            )
        self.occupied_words += words

    def drain(self, words: int | None = None) -> None:
        if words is None:
            self.occupied_words = 0
            return
        if words > self.occupied_words:
            raise SimulationError("buffer underflow")
        self.occupied_words -= words
