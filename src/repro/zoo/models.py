"""Benchmark network builders (paper §4.1, Tables 1 and 2).

The classic benchmarks are written in the descriptive-script format the
paper uses; the modern-topology additions (depthwise, residual, fire)
are authored as ONNX-style documents so the zoo exercises both
registered frontends end to end.  Everything routes through
:func:`repro.frontend.load`.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.frontend import load
from repro.frontend.graph import NetworkGraph
from repro.frontend.onnx import graph_from_document


def _parse(text: str) -> NetworkGraph:
    return load(text, format="prototxt")


def _layer(name: str, kind: str, bottom: str | None, top: str,
           params: str = "", extra: str = "") -> str:
    bottom_line = f'  bottom: "{bottom}"\n' if bottom else ""
    param_block = f"  param {{ {params} }}\n" if params else ""
    return (
        "layers {\n"
        f'  name: "{name}"\n'
        f"  type: {kind}\n"
        f"{bottom_line}"
        f'  top: "{top}"\n'
        f"{param_block}"
        f"{extra}"
        "}\n"
    )


def _data(shape: tuple[int, ...]) -> str:
    dims = " ".join(f"dim: {d}" for d in shape)
    return _layer("data", "DATA", None, "data", dims)


def ann(name: str, layer_sizes: list[int],
        activation: str = "SIGMOID") -> NetworkGraph:
    """A fully-connected ANN: one FC + activation per hidden layer.

    ``layer_sizes`` is ``[input, hidden..., output]`` — the paper's
    "4-layer ANN" is ``[in, h1, h2, out]``.
    """
    if len(layer_sizes) < 2:
        raise GraphError("an ANN needs at least input and output sizes")
    text = f'name: "{name}"\n' + _data((layer_sizes[0],))
    previous = "data"
    for index, width in enumerate(layer_sizes[1:], start=1):
        layer_name = f"ip{index}"
        text += _layer(layer_name, "INNER_PRODUCT", previous, layer_name,
                       f"num_output: {width}")
        if index < len(layer_sizes) - 1:
            text += _layer(f"act{index}", activation, layer_name, layer_name)
        previous = layer_name
    return _parse(text)


def ann_fft() -> NetworkGraph:
    """ANN-0: the AxBench ``fft`` approximator (1 -> 4 -> 4 -> 2)."""
    return ann("ann0_fft", [1, 4, 4, 2])


def ann_jpeg() -> NetworkGraph:
    """ANN-1: the AxBench ``jpeg`` block approximator (64 -> 16 -> 8 -> 64)."""
    return ann("ann1_jpeg", [64, 16, 8, 64])


def ann_kmeans() -> NetworkGraph:
    """ANN-2: the AxBench ``kmeans`` approximator (6 -> 8 -> 4 -> 1)."""
    return ann("ann2_kmeans", [6, 8, 4, 1])


def hopfield_net(neurons: int = 25) -> NetworkGraph:
    """2-layer Hopfield TSP solver: one recurrent layer of n^2 neurons."""
    text = 'name: "hopfield"\n' + _data((neurons,))
    text += _layer(
        "hop", "RECURRENT", "data", "hop", f"num_output: {neurons}",
        '  connect { name: "feedback" direction: recurrent type: full }\n',
    )
    text += _layer("act", "SIGMOID", "hop", "hop")
    return _parse(text)


def cmac_net(table_size: int = 4096, outputs: int = 2) -> NetworkGraph:
    """2-layer CMAC: an associative (memory) layer over the tile table.

    The input blob is the active-cell selector vector produced by the
    tiling hash; the associative layer holds the weight table (paper
    Table 1 marks CMAC's associative layer).
    """
    text = 'name: "cmac"\n' + _data((table_size,))
    text += _layer(
        "assoc", "ASSOCIATIVE", "data", "assoc", f"num_output: {outputs}",
        '  connect { name: "recall" direction: recurrent '
        'type: file_specified }\n',
    )
    text += _layer("act", "SIGMOID", "assoc", "assoc")
    return _parse(text)


def mnist() -> NetworkGraph:
    """5-layer MNIST digit net (LeNet shape, with LRN as in paper Table 1)."""
    text = 'name: "mnist"\n' + _data((1, 28, 28))
    text += _layer("conv1", "CONVOLUTION", "data", "conv1",
                   "num_output: 20 kernel_size: 5 stride: 1")
    text += _layer("pool1", "POOLING", "conv1", "pool1",
                   "pool: MAX kernel_size: 2 stride: 2")
    text += _layer("norm1", "LRN", "pool1", "norm1", "local_size: 5")
    text += _layer("conv2", "CONVOLUTION", "norm1", "conv2",
                   "num_output: 50 kernel_size: 5 stride: 1")
    text += _layer("pool2", "POOLING", "conv2", "pool2",
                   "pool: MAX kernel_size: 2 stride: 2")
    text += _layer("ip1", "INNER_PRODUCT", "pool2", "ip1", "num_output: 500")
    text += _layer("relu1", "RELU", "ip1", "ip1")
    text += _layer("ip2", "INNER_PRODUCT", "ip1", "ip2", "num_output: 10")
    text += _layer("prob", "SOFTMAX", "ip2", "prob")
    return _parse(text)


def alexnet() -> NetworkGraph:
    """AlexNet (Krizhevsky et al. NIPS'12), single-input inference shape."""
    text = 'name: "alexnet"\n' + _data((3, 227, 227))
    text += _layer("conv1", "CONVOLUTION", "data", "conv1",
                   "num_output: 96 kernel_size: 11 stride: 4")
    text += _layer("relu1", "RELU", "conv1", "conv1")
    text += _layer("norm1", "LRN", "conv1", "norm1", "local_size: 5")
    text += _layer("pool1", "POOLING", "norm1", "pool1",
                   "pool: MAX kernel_size: 3 stride: 2")
    text += _layer("conv2", "CONVOLUTION", "pool1", "conv2",
                   "num_output: 256 kernel_size: 5 stride: 1 pad: 2 group: 2")
    text += _layer("relu2", "RELU", "conv2", "conv2")
    text += _layer("norm2", "LRN", "conv2", "norm2", "local_size: 5")
    text += _layer("pool2", "POOLING", "norm2", "pool2",
                   "pool: MAX kernel_size: 3 stride: 2")
    text += _layer("conv3", "CONVOLUTION", "pool2", "conv3",
                   "num_output: 384 kernel_size: 3 stride: 1 pad: 1")
    text += _layer("relu3", "RELU", "conv3", "conv3")
    text += _layer("conv4", "CONVOLUTION", "conv3", "conv4",
                   "num_output: 384 kernel_size: 3 stride: 1 pad: 1 group: 2")
    text += _layer("relu4", "RELU", "conv4", "conv4")
    text += _layer("conv5", "CONVOLUTION", "conv4", "conv5",
                   "num_output: 256 kernel_size: 3 stride: 1 pad: 1 group: 2")
    text += _layer("relu5", "RELU", "conv5", "conv5")
    text += _layer("pool5", "POOLING", "conv5", "pool5",
                   "pool: MAX kernel_size: 3 stride: 2")
    text += _layer("fc6", "INNER_PRODUCT", "pool5", "fc6", "num_output: 4096")
    text += _layer("relu6", "RELU", "fc6", "fc6")
    text += _layer("drop6", "DROPOUT", "fc6", "fc6", "dropout_ratio: 0.5")
    text += _layer("fc7", "INNER_PRODUCT", "fc6", "fc7", "num_output: 4096")
    text += _layer("relu7", "RELU", "fc7", "fc7")
    text += _layer("drop7", "DROPOUT", "fc7", "fc7", "dropout_ratio: 0.5")
    text += _layer("fc8", "INNER_PRODUCT", "fc7", "fc8", "num_output: 1000")
    text += _layer("prob", "SOFTMAX", "fc8", "prob")
    return _parse(text)


def nin() -> NetworkGraph:
    """Network-in-Network (Lin et al.), ImageNet configuration."""
    text = 'name: "nin"\n' + _data((3, 227, 227))

    def mlpconv(block: int, bottom: str, outputs: int, kernel: int,
                stride: int, pad: int) -> tuple[str, str]:
        nonlocal text
        conv = f"conv{block}"
        text += _layer(conv, "CONVOLUTION", bottom, conv,
                       f"num_output: {outputs} kernel_size: {kernel} "
                       f"stride: {stride} pad: {pad}")
        text += _layer(f"relu{block}0", "RELU", conv, conv)
        cccp_a = f"cccp{block}a"
        text += _layer(cccp_a, "CONVOLUTION", conv, cccp_a,
                       f"num_output: {outputs} kernel_size: 1 stride: 1")
        text += _layer(f"relu{block}a", "RELU", cccp_a, cccp_a)
        cccp_b = f"cccp{block}b"
        text += _layer(cccp_b, "CONVOLUTION", cccp_a, cccp_b,
                       f"num_output: {outputs} kernel_size: 1 stride: 1")
        text += _layer(f"relu{block}b", "RELU", cccp_b, cccp_b)
        return cccp_b, conv

    top, _ = mlpconv(1, "data", 96, 11, 4, 0)
    text += _layer("pool1", "POOLING", top, "pool1",
                   "pool: MAX kernel_size: 3 stride: 2")
    top, _ = mlpconv(2, "pool1", 256, 5, 1, 2)
    text += _layer("pool2", "POOLING", top, "pool2",
                   "pool: MAX kernel_size: 3 stride: 2")
    top, _ = mlpconv(3, "pool2", 384, 3, 1, 1)
    text += _layer("pool3", "POOLING", top, "pool3",
                   "pool: MAX kernel_size: 3 stride: 2")
    text += _layer("drop", "DROPOUT", "pool3", "pool3", "dropout_ratio: 0.5")
    top, _ = mlpconv(4, "pool3", 1000, 3, 1, 1)
    text += _layer("pool4", "POOLING", top, "pool4",
                   "pool: AVE kernel_size: 6 stride: 1")
    text += _layer("prob", "SOFTMAX", "pool4", "prob")
    return _parse(text)


def cifar() -> NetworkGraph:
    """The Caffe ``cifar10_quick`` network."""
    text = 'name: "cifar"\n' + _data((3, 32, 32))
    text += _layer("conv1", "CONVOLUTION", "data", "conv1",
                   "num_output: 32 kernel_size: 5 stride: 1 pad: 2")
    text += _layer("pool1", "POOLING", "conv1", "pool1",
                   "pool: MAX kernel_size: 3 stride: 2")
    text += _layer("relu1", "RELU", "pool1", "pool1")
    text += _layer("conv2", "CONVOLUTION", "pool1", "conv2",
                   "num_output: 32 kernel_size: 5 stride: 1 pad: 2")
    text += _layer("relu2", "RELU", "conv2", "conv2")
    text += _layer("pool2", "POOLING", "conv2", "pool2",
                   "pool: AVE kernel_size: 3 stride: 2")
    text += _layer("conv3", "CONVOLUTION", "pool2", "conv3",
                   "num_output: 64 kernel_size: 5 stride: 1 pad: 2")
    text += _layer("relu3", "RELU", "conv3", "conv3")
    text += _layer("pool3", "POOLING", "conv3", "pool3",
                   "pool: AVE kernel_size: 3 stride: 2")
    text += _layer("ip1", "INNER_PRODUCT", "pool3", "ip1", "num_output: 64")
    text += _layer("ip2", "INNER_PRODUCT", "ip1", "ip2", "num_output: 10")
    text += _layer("prob", "SOFTMAX", "ip2", "prob")
    return _parse(text)


def inception_block(block: str, bottom: str, b1x1: int, b3x3_reduce: int,
                    b3x3: int, b5x5_reduce: int, b5x5: int,
                    pool_proj: int) -> str:
    """Script text of one executable GoogLeNet inception block.

    The paper maps the inception layer onto "pooling-unit + synergy
    neuron + accumulators"; here the block is decomposed into its four
    branches (1x1, 3x3 with reduction, 5x5 with reduction, pool
    projection) concatenated along channels, so the reference and
    quantized executors can run it layer by layer.
    """
    text = ""

    def conv(name: str, source: str, outputs: int, kernel: int,
             pad: int = 0) -> str:
        nonlocal text
        text += _layer(name, "CONVOLUTION", source, name,
                       f"num_output: {outputs} kernel_size: {kernel} "
                       f"stride: 1 pad: {pad}")
        text += _layer(f"{name}_relu", "RELU", name, name)
        return name

    branch1 = conv(f"{block}_1x1", bottom, b1x1, 1)
    reduce3 = conv(f"{block}_3x3_reduce", bottom, b3x3_reduce, 1)
    branch3 = conv(f"{block}_3x3", reduce3, b3x3, 3, pad=1)
    reduce5 = conv(f"{block}_5x5_reduce", bottom, b5x5_reduce, 1)
    branch5 = conv(f"{block}_5x5", reduce5, b5x5, 5, pad=2)
    pool_name = f"{block}_pool"
    text += _layer(pool_name, "POOLING", bottom, pool_name,
                   "pool: MAX kernel_size: 3 stride: 1 pad: 1")
    proj = conv(f"{block}_pool_proj", pool_name, pool_proj, 1)
    text += (
        "layers {\n"
        f'  name: "{block}_output"\n'
        "  type: CONCAT\n"
        f'  bottom: "{branch1}"\n'
        f'  bottom: "{branch3}"\n'
        f'  bottom: "{branch5}"\n'
        f'  bottom: "{proj}"\n'
        f'  top: "{block}_output"\n'
        "}\n"
    )
    return text


def googlenet_stem(input_size: int = 32) -> NetworkGraph:
    """An executable GoogLeNet fragment: stem + inception(3a) + classifier.

    Unlike :func:`googlenet_sample` (which uses the abstract INCEPTION
    layer kind for the Table 1 decomposition), this model decomposes the
    inception block into runnable branches.
    """
    text = 'name: "googlenet_stem"\n' + _data((3, input_size, input_size))
    text += _layer("conv1", "CONVOLUTION", "data", "conv1",
                   "num_output: 16 kernel_size: 3 stride: 1 pad: 1")
    text += _layer("relu1", "RELU", "conv1", "conv1")
    text += _layer("pool1", "POOLING", "conv1", "pool1",
                   "pool: MAX kernel_size: 2 stride: 2")
    text += inception_block("incep3a", "pool1", b1x1=8, b3x3_reduce=6,
                            b3x3=12, b5x5_reduce=2, b5x5=4, pool_proj=4)
    text += _layer("pool5", "POOLING", "incep3a_output", "pool5",
                   "pool: AVE kernel_size: 2 stride: 2")
    text += _layer("fc", "INNER_PRODUCT", "pool5", "fc", "num_output: 10")
    text += _layer("prob", "SOFTMAX", "fc", "prob")
    return _parse(text)


def googlenet_sample() -> NetworkGraph:
    """A GoogLeNet-style stem + inception block (Table 1 sample only)."""
    text = 'name: "googlenet_sample"\n' + _data((3, 56, 56))
    text += _layer("conv1", "CONVOLUTION", "data", "conv1",
                   "num_output: 64 kernel_size: 7 stride: 2 pad: 3")
    text += _layer("relu1", "RELU", "conv1", "conv1")
    text += _layer("pool1", "POOLING", "conv1", "pool1",
                   "pool: MAX kernel_size: 3 stride: 2")
    text += _layer("norm1", "LRN", "pool1", "norm1", "local_size: 5")
    text += _layer("incep1", "INCEPTION", "norm1", "incep1",
                   "num_output: 256")
    text += _layer("drop", "DROPOUT", "incep1", "incep1",
                   "dropout_ratio: 0.4")
    text += _layer("fc", "INNER_PRODUCT", "incep1", "fc", "num_output: 100")
    text += _layer("prob", "SOFTMAX", "fc", "prob")
    return _parse(text)


# --- modern-topology additions (authored as ONNX-style documents) ------


def _node(name: str, op: str, bottoms: list[str], tops: list[str] | None = None,
          **attrs: object) -> dict[str, object]:
    node: dict[str, object] = {
        "name": name,
        "op_type": op,
        "input": bottoms,
        "output": tops or [name],
    }
    if attrs:
        node["attributes"] = attrs
    return node


def _onnx_net(name: str, input_shape: tuple[int, ...],
              nodes: list[dict[str, object]]) -> NetworkGraph:
    return graph_from_document({
        "ir_version": 1,
        "producer_name": "repro.zoo",
        "graph": {
            "name": name,
            "input": [{"name": "data", "shape": list(input_shape)}],
            "node": nodes,
        },
    })


def mobilenet_tiny() -> NetworkGraph:
    """A MobileNet-class stack: depthwise-separable convolution blocks.

    Each block is a 3x3 depthwise convolution (one filter per input
    channel) followed by a 1x1 pointwise convolution — the paper-era
    dense convolutions replaced by the factorized form MobileNet
    popularized.
    """
    nodes = [
        _node("conv1", "Conv", ["data"],
              num_output=8, kernel_size=3, stride=2, pad=1),
        _node("relu1", "Relu", ["conv1"], ["conv1"]),
        # ds block 1: 8ch spatial filtering, then 16ch mixing
        _node("dw2", "DepthwiseConv", ["conv1"],
              num_output=8, kernel_size=3, stride=1, pad=1),
        _node("relu_dw2", "Relu", ["dw2"], ["dw2"]),
        _node("pw2", "Conv", ["dw2"], num_output=16, kernel_size=1),
        _node("relu_pw2", "Relu", ["pw2"], ["pw2"]),
        # ds block 2: stride-2 depthwise shrinks the map, 32ch mixing
        _node("dw3", "DepthwiseConv", ["pw2"],
              num_output=16, kernel_size=3, stride=2, pad=1),
        _node("relu_dw3", "Relu", ["dw3"], ["dw3"]),
        _node("pw3", "Conv", ["dw3"], num_output=32, kernel_size=1),
        _node("relu_pw3", "Relu", ["pw3"], ["pw3"]),
        _node("pool", "AveragePool", ["pw3"], kernel_size=8, stride=1),
        _node("fc", "Gemm", ["pool"], num_output=10),
        _node("prob", "Softmax", ["fc"]),
    ]
    return _onnx_net("mobilenet_tiny", (3, 32, 32), nodes)


def resnet_tiny() -> NetworkGraph:
    """A ResNet-class stack: two identity-skip residual blocks.

    The elementwise-add join is the ELTWISE IR kind; both branches keep
    the 8x16x16 shape so the skip needs no projection.
    """

    def block(index: int, bottom: str) -> list[dict[str, object]]:
        a, b, out = f"res{index}a", f"res{index}b", f"res{index}"
        return [
            _node(a, "Conv", [bottom],
                  num_output=8, kernel_size=3, stride=1, pad=1),
            _node(f"{a}_relu", "Relu", [a], [a]),
            _node(b, "Conv", [a],
                  num_output=8, kernel_size=3, stride=1, pad=1),
            _node(out, "Add", [bottom, b]),
            _node(f"{out}_relu", "Relu", [out], [out]),
        ]

    nodes = [
        _node("conv1", "Conv", ["data"],
              num_output=8, kernel_size=3, stride=1, pad=1),
        _node("relu1", "Relu", ["conv1"], ["conv1"]),
        *block(1, "conv1"),
        *block(2, "res1"),
        _node("pool", "AveragePool", ["res2"], kernel_size=2, stride=2),
        _node("fc", "Gemm", ["pool"], num_output=10),
        _node("prob", "Softmax", ["fc"]),
    ]
    return _onnx_net("resnet_tiny", (3, 16, 16), nodes)


def squeezenet_tiny() -> NetworkGraph:
    """A SqueezeNet-class stack: fire modules (squeeze + expand concat).

    Each fire module squeezes channels with a 1x1 convolution, expands
    through parallel 1x1 and 3x3 branches, and concatenates the branch
    channels — the concat-heavy topology class.
    """

    def fire(index: int, bottom: str, squeeze: int,
             expand: int) -> list[dict[str, object]]:
        s, e1, e3 = f"fire{index}_s", f"fire{index}_e1", f"fire{index}_e3"
        out = f"fire{index}"
        return [
            _node(s, "Conv", [bottom], num_output=squeeze, kernel_size=1),
            _node(f"{s}_relu", "Relu", [s], [s]),
            _node(e1, "Conv", [s], num_output=expand, kernel_size=1),
            _node(f"{e1}_relu", "Relu", [e1], [e1]),
            _node(e3, "Conv", [s],
                  num_output=expand, kernel_size=3, stride=1, pad=1),
            _node(f"{e3}_relu", "Relu", [e3], [e3]),
            _node(out, "Concat", [e1, e3]),
        ]

    nodes = [
        _node("conv1", "Conv", ["data"],
              num_output=16, kernel_size=3, stride=2, pad=1),
        _node("relu1", "Relu", ["conv1"], ["conv1"]),
        *fire(1, "conv1", squeeze=4, expand=8),
        _node("pool1", "MaxPool", ["fire1"], kernel_size=2, stride=2),
        *fire(2, "pool1", squeeze=4, expand=8),
        _node("pool2", "AveragePool", ["fire2"], kernel_size=8, stride=1),
        _node("fc", "Gemm", ["pool2"], num_output=10),
        _node("prob", "Softmax", ["fc"]),
    ]
    return _onnx_net("squeezenet_tiny", (3, 32, 32), nodes)


#: The Table 2 benchmark inventory: name -> (builder, application).
BENCHMARKS = {
    "ann0": (ann_fft, "fft (approximate computing)"),
    "ann1": (ann_jpeg, "jpeg (approximate computing)"),
    "ann2": (ann_kmeans, "kmeans (approximate computing)"),
    "alexnet": (alexnet, "Image recognition"),
    "nin": (nin, "Image recognition"),
    "cifar": (cifar, "Image classification"),
    "cmac": (cmac_net, "Robot arm control"),
    "hopfield": (hopfield_net, "TSP solver"),
    "mnist": (mnist, "Number recognition"),
    "mobilenet_tiny": (mobilenet_tiny, "Image classification (depthwise)"),
    "resnet_tiny": (resnet_tiny, "Image classification (residual)"),
    "squeezenet_tiny": (squeezenet_tiny, "Image classification (fire/concat)"),
}


def benchmark_graph(name: str) -> NetworkGraph:
    """Build one of the paper's benchmarks by name."""
    try:
        builder, _ = BENCHMARKS[name]
    except KeyError:
        raise GraphError(
            f"unknown benchmark '{name}'; options: {sorted(BENCHMARKS)}"
        ) from None
    return builder()
