"""Model zoo: the paper's benchmark networks as descriptive scripts.

Every builder returns a validated :class:`~repro.frontend.graph.NetworkGraph`
parsed from a Caffe-compatible script, exercising the same frontend path
a user's ``*.prototxt`` takes.  The inventory matches paper Tables 1/2:
three 4-layer ANNs (AxBench approximators), 2-layer Hopfield, 2-layer
CMAC, 5-layer MNIST, AlexNet, NiN and Cifar, plus a GoogLeNet-style
inception sample used by the Table 1 decomposition.
"""

from repro.zoo.models import (
    BENCHMARKS,
    alexnet,
    ann,
    ann_fft,
    ann_jpeg,
    ann_kmeans,
    benchmark_graph,
    cifar,
    cmac_net,
    googlenet_sample,
    googlenet_stem,
    hopfield_net,
    inception_block,
    mnist,
    nin,
)

__all__ = [
    "BENCHMARKS",
    "benchmark_graph",
    "ann",
    "ann_fft",
    "ann_jpeg",
    "ann_kmeans",
    "hopfield_net",
    "cmac_net",
    "mnist",
    "alexnet",
    "nin",
    "cifar",
    "googlenet_sample",
    "googlenet_stem",
    "inception_block",
]
