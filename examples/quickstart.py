"""Quickstart: one-click from descriptive script to accelerator.

The DeepBurning flow of paper Fig. 3, driven through the
``repro.build`` facade:

1. write a Caffe-compatible descriptive script,
2. ``repro.build`` runs the whole chain — parse, shape inference,
   NN-Gen under a resource budget, compiler — in one call,
3. the RTL backend emits synthesizable Verilog from the artifacts,
4. ``repro.simulate`` runs a forward propagation and reports
   time/energy plus the bit-accurate fixed-point outputs.

Run: ``python examples/quickstart.py``
"""

import numpy as np

import repro
from repro.rtl.emit import emit_project, project_stats

SCRIPT = """
name: "quickstart_net"
layers { name: "data"  type: DATA top: "data" param { dim: 1 dim: 16 dim: 16 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
         param { num_output: 8 kernel_size: 3 stride: 1 } }
layers { name: "relu1" type: RELU bottom: "conv1" top: "conv1" }
layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
         param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "ip1"   type: INNER_PRODUCT bottom: "pool1" top: "ip1"
         param { num_output: 10 } }
layers { name: "prob"  type: SOFTMAX bottom: "ip1" top: "prob" }
"""


def main() -> None:
    # 1+2. Parse, infer shapes, generate hardware under a Z-7020 budget
    # and compile the control program — one facade call.
    artifacts = repro.build(SCRIPT, device="Z-7020", fraction=0.3,
                            label="quickstart")
    print(f"parsed '{artifacts.graph.name}': {len(artifacts.graph)} layers")
    print(artifacts.design.summary())
    print(artifacts.program.summary())

    # 3. Emit the Verilog project.
    sources = emit_project(artifacts.design)
    stats = project_stats(sources)
    print(f"emitted {stats['files']} Verilog files, "
          f"{stats['modules']} modules, {stats['lines']} lines")

    # 4. Simulate one forward propagation (bit-level + timing).
    image = np.random.default_rng(1).uniform(-1, 1, artifacts.input_shape)
    result = repro.simulate(artifacts, image, all_blobs=True)
    print(f"forward propagation: {result.summary()}")
    print(f"class scores (fixed-point): "
          f"{np.round(result.outputs['ip1'], 3)}")


if __name__ == "__main__":
    main()
