"""Quickstart: one-click from descriptive script to accelerator.

The DeepBurning flow of paper Fig. 3 in five steps:

1. write a Caffe-compatible descriptive script,
2. NN-Gen generates the accelerator design under a resource budget,
3. the compiler produces the control program (folds, AGU patterns,
   Approx-LUT contents, data layout),
4. the RTL backend emits synthesizable Verilog,
5. the simulator runs a forward propagation and reports time/energy.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.compiler import DeepBurningCompiler
from repro.devices import Z7020, budget_fraction
from repro.frontend.graph import graph_from_text
from repro.nn.reference import init_weights
from repro.nngen import NNGen
from repro.rtl.emit import emit_project, project_stats
from repro.sim import AcceleratorSimulator

SCRIPT = """
name: "quickstart_net"
layers { name: "data"  type: DATA top: "data" param { dim: 1 dim: 16 dim: 16 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
         param { num_output: 8 kernel_size: 3 stride: 1 } }
layers { name: "relu1" type: RELU bottom: "conv1" top: "conv1" }
layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
         param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "ip1"   type: INNER_PRODUCT bottom: "pool1" top: "ip1"
         param { num_output: 10 } }
layers { name: "prob"  type: SOFTMAX bottom: "ip1" top: "prob" }
"""


def main() -> None:
    # 1. Parse the descriptive script into the network IR.
    graph = graph_from_text(SCRIPT)
    print(f"parsed '{graph.name}': {len(graph)} layers")

    # 2. Generate the accelerator under a Z-7020 budget.
    budget = budget_fraction(Z7020, 0.3, label="quickstart")
    design = NNGen().generate(graph, budget)
    print(design.summary())

    # 3. Compile control flow, layout and LUT contents (with weights).
    weights = init_weights(graph, np.random.default_rng(0))
    program = DeepBurningCompiler().compile(design, weights=weights)
    print(program.summary())

    # 4. Emit the Verilog project.
    sources = emit_project(design)
    stats = project_stats(sources)
    print(f"emitted {stats['files']} Verilog files, "
          f"{stats['modules']} modules, {stats['lines']} lines")

    # 5. Simulate one forward propagation (bit-level + timing).
    image = np.random.default_rng(1).uniform(-1, 1, (1, 16, 16))
    result = AcceleratorSimulator(program, weights=weights).run(image)
    print(f"forward propagation: {result.summary()}")
    print(f"class scores (fixed-point): "
          f"{np.round(result.outputs['ip1'], 3)}")


if __name__ == "__main__":
    main()
