"""Batched serving: one generated accelerator, a stream of requests.

The paper stops at one forward pass; ``repro.runtime`` turns the built
accelerator into a serving endpoint.  This example builds the zoo MNIST
network, stands up an :class:`~repro.runtime.InferenceServer` (bounded
queue, dynamic micro-batching, worker simulator sessions), pushes a
burst of requests through it and prints the metrics report, then shows
the structured timeout path: an impossible deadline yields a
``RequestTimeout`` response, never an exception.

Run: ``python examples/batched_serving.py``
"""

import numpy as np

from repro.runtime import CompiledModel, InferenceServer, RequestTimeout

REQUESTS = 24


def main() -> None:
    model = CompiledModel.from_zoo("mnist", device="Z-7045", fraction=0.3)
    print(f"serving '{model.name}', input shape {model.input_shape}")

    stream = model.random_requests(REQUESTS, seed=1)
    with InferenceServer(model, workers=2, max_batch_size=8,
                         max_queue_depth=64) as server:
        pending = [server.submit(x) for x in stream]
        responses = [p.result() for p in pending]

    ok = [r for r in responses if r.ok]
    print(f"served {len(ok)}/{REQUESTS} requests")
    print(f"simulated {ok[0].cycles} cycles "
          f"({ok[0].sim_time_s * 1e3:.3f} ms) per inference")
    digits = [int(np.argmax(r.output)) for r in ok[:8]]
    print(f"predicted digits (first 8 requests): {digits}")
    print(server.metrics.render())

    # A deadline of zero can never be met: the server answers with a
    # structured timeout response instead of raising.
    with InferenceServer(model, workers=1) as server:
        response = server.infer(stream[0], timeout_s=0.0)
    assert isinstance(response, RequestTimeout)
    print(f"\nimpossible deadline -> status '{response.status}' "
          f"({response.error})")


if __name__ == "__main__":
    main()
