"""Design-space exploration with NN-Gen.

The paper's motivating workflow (§1, "Why FPGA?"): a developer explores
resource budgets for their network and picks the point whose
performance/area trade-off fits the application.  This example sweeps
budget fractions of the Z-7045 for the MNIST digit network and prints
the resulting datapath width, folding depth, resource bill, runtime and
energy per forward propagation.

Run: ``python examples/design_space_exploration.py``
"""

from repro.compiler import DeepBurningCompiler
from repro.devices import Z7045, budget_fraction
from repro.experiments.report import format_energy, format_time, render_table
from repro.nngen import NNGen
from repro.sim import AcceleratorSimulator
from repro.zoo import mnist


def explore(fractions=(0.05, 0.10, 0.20, 0.40, 0.80)):
    graph = mnist()
    rows = []
    for fraction in fractions:
        budget = budget_fraction(Z7045, fraction)
        design = NNGen().generate(graph, budget)
        program = DeepBurningCompiler().compile(design)
        result = AcceleratorSimulator(program).run(functional=False)
        used = design.resource_report()
        rows.append([
            f"{fraction:.0%}",
            f"{design.datapath.lanes}x{design.datapath.simd}",
            len(design.folding),
            used.dsp,
            used.lut,
            format_time(result.time_s),
            format_energy(result.energy.total_j),
            f"{result.energy.average_power_w:.2f}W",
        ])
    return rows


def main() -> None:
    rows = explore()
    print(render_table(
        ["budget", "lanes x simd", "folds", "DSP", "LUT", "time",
         "energy", "power"],
        rows,
        title="MNIST accelerator design space on the Z-7045",
    ))
    print("\nPick the knee: past the point where folding disappears, "
          "extra area buys little speed.")


if __name__ == "__main__":
    main()
