"""Design-space exploration with the ``repro.dse`` engine.

The paper's motivating workflow (§1, "Why FPGA?"): a developer explores
resource budgets for their network and picks the point whose
performance/area trade-off fits the application.  This example declares
a five-fraction sweep of the Z-7045 for the MNIST digit network, runs it
through :func:`repro.dse.run_sweep` (generate → compile → simulate per
point, with a persistent design cache), then repeats the sweep to show
every point coming straight out of the cache.  The report marks the
latency-vs-resource Pareto frontier and names its knee.

Run: ``python examples/design_space_exploration.py``
(or ``repro dse --script net.prototxt --jobs 4`` on your own script).
"""

import tempfile

from repro.dse import DesignCache, SweepSpec, run_sweep
from repro.experiments.report import format_time
from repro.zoo import mnist


def explore(cache_dir: str, fractions=(0.05, 0.10, 0.20, 0.40, 0.80)):
    graph = mnist()
    spec = SweepSpec(device="Z-7045", fractions=fractions)
    return run_sweep(graph, spec, jobs=1, cache=DesignCache(cache_dir))


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        first = explore(cache_dir)
        print(first.render(
            title="MNIST accelerator design space on the Z-7045"))
        print(f"\ncold sweep: {first.cache_summary()} "
              f"in {first.elapsed_s:.2f}s")
        second = explore(cache_dir)
        print(f"warm sweep: {second.cache_summary()} "
              f"in {second.elapsed_s:.2f}s")
        knee = second.knee()
        if knee is not None:
            print(f"\nPick the knee: {knee.point.label} of the device "
                  f"({format_time(knee.time_s)}, {knee.dsp} DSP, "
                  f"{knee.lut} LUT) — past it, extra area buys "
                  "little speed.")


if __name__ == "__main__":
    main()
