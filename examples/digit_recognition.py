"""Digit recognition end to end: train, generate, burn, classify.

The paper's MNIST use case at laptop scale: a small digit CNN is trained
on the synthetic digit set, an accelerator is generated and compiled for
it, Verilog is written to ``./quickstart_rtl/``, and the fixed-point
accelerator classifies the held-out digits next to the float network.

Run: ``python examples/digit_recognition.py``
"""

import os
import tempfile

import numpy as np

import repro
from repro.experiments.config import scheme_budget
from repro.experiments.training import trained_mnist_small
from repro.nn.reference import ReferenceNetwork
from repro.rtl.emit import write_project
from repro.rtl.lint import lint_source
from repro.sim.quantized import QuantizedExecutor


def main() -> None:
    print("training the digit CNN on synthetic digits (cached)...")
    graph, weights, test_x, test_y = trained_mnist_small()

    artifacts = repro.build(graph, budget=scheme_budget("DB"),
                            weights=weights,
                            calibration_inputs=[test_x[0], test_x[1]])
    print(artifacts.design.summary())

    rtl_dir = os.path.join(tempfile.gettempdir(), "deepburning_digit_rtl")
    paths = write_project(artifacts.design, rtl_dir)
    sources = {os.path.basename(p): open(p).read()
               for p in paths if p.endswith(".v")}
    report = lint_source(sources)
    report.raise_on_error()
    print(f"wrote {len(paths)} RTL files to {rtl_dir} (lint clean)")

    float_net = ReferenceNetwork(graph, weights)
    quantized = QuantizedExecutor.from_program(artifacts.program, weights)

    float_correct = 0
    fixed_correct = 0
    for image, label in zip(test_x, test_y):
        if int(np.argmax(float_net.output(image))) == int(label):
            float_correct += 1
        if int(np.argmax(quantized.output(image))) == int(label):
            fixed_correct += 1
    total = len(test_x)
    print(f"\nheld-out digits: {total}")
    print(f"  float software NN accuracy:      {100 * float_correct / total:.1f}%")
    print(f"  fixed-point accelerator accuracy: {100 * fixed_correct / total:.1f}%")

    # Timing/energy of one classification on the simulated board.
    result = repro.simulate(artifacts, test_x[0], all_blobs=True)
    predicted = int(np.argmax(result.outputs["ip2"]))
    print(f"\none inference: {result.summary()}")
    print(f"accelerator predicts digit {predicted}, label is {int(test_y[0])}")


if __name__ == "__main__":
    main()
