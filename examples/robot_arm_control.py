"""Robot-arm control with a CMAC accelerator (the paper's CMAC benchmark).

A CMAC learns the inverse kinematics of a planar two-link arm; the
associative layer's weight table is then quantized exactly as the
generated accelerator stores it, and the controller drives the arm along
a circular trajectory in both arithmetic modes.

Run: ``python examples/robot_arm_control.py``
"""

import numpy as np

from repro.apps.robot import (
    TwoLinkArm,
    denormalise_angles,
    inverse_kinematics_dataset,
)
from repro.fixedpoint.calibrate import calibrate_format
from repro.fixedpoint.ops import dequantize, quantize_to_ints
from repro.nn.cmac import CMAC


def main() -> None:
    arm = TwoLinkArm(link1=1.0, link2=0.8)
    print("training CMAC on inverse kinematics...")
    cmac = CMAC(input_dim=2, output_dim=2, n_tilings=16, resolution=16,
                table_size=16384, seed=0)
    inputs, targets = inverse_kinematics_dataset(arm, 3000, seed=0)
    history = cmac.train(inputs, targets, epochs=60, lr=0.3)
    print(f"  training MSE: {history[0]:.4f} -> {history[-1]:.6f}")

    weight_format = calibrate_format(cmac.weights, total_bits=16,
                                     headroom=1.5)
    print(f"  accelerator weight format: {weight_format}")

    def fixed_point_predict(x):
        cells = cmac.active_cells(x)
        raw = quantize_to_ints(cmac.weights[cells], weight_format)
        return dequantize(raw.sum(axis=0), weight_format)

    # Track held-out reachable targets (the controller's workspace).
    from repro.apps.robot import denormalise_position
    waypoints, _ = inverse_kinematics_dataset(arm, 12, seed=99)
    print("\ntracking 12 held-out workspace targets:")
    print("  target (x, y)      float err   fixed-point err")
    float_errors, fixed_errors = [], []
    for normalised in waypoints:
        target = denormalise_position(arm, normalised)
        float_sol = denormalise_angles(cmac.predict(normalised))
        fixed_sol = denormalise_angles(fixed_point_predict(normalised))
        float_err = arm.position_error(target, float_sol)
        fixed_err = arm.position_error(target, fixed_sol)
        float_errors.append(float_err)
        fixed_errors.append(fixed_err)
        print(f"  ({target[0]: .3f}, {target[1]: .3f})   "
              f"{float_err:9.4f}   {fixed_err:9.4f}")

    print(f"\nmean tracking error: float {np.mean(float_errors):.4f}, "
          f"fixed-point {np.mean(fixed_errors):.4f} "
          f"(arm reach = {arm.reach})")


if __name__ == "__main__":
    main()
