"""Approximate computing with a generated ANN accelerator (AxBench fft).

The paper's ANN-0 use case: a 1->4->4->2 MLP learns the FFT twiddle
kernel; the orthodox FFT then runs with the trained network dropped into
its inner loop.  We compare three variants against the exact transform:

* the float software NN ("NN on CPU"),
* the fixed-point + Approx-LUT accelerator (DeepBurning),

and report the paper's Eq. (1) relative accuracy for both.

Run: ``python examples/approximate_computing.py``
"""

import numpy as np

from repro.apps.fft import approximate_fft, fft_radix2
from repro.apps.metrics import relative_accuracy
from repro.experiments.fig10_accuracy import quantized_from_trained
from repro.experiments.training import trained_ann0
from repro.nn.reference import ReferenceNetwork


def main() -> None:
    print("training ANN-0 (fft twiddle approximator)...")
    graph, weights = trained_ann0()
    float_net = ReferenceNetwork(graph, weights)
    rng = np.random.default_rng(0)
    quantized = quantized_from_trained(
        graph, weights, [rng.random(1) for _ in range(8)])

    signal = np.random.default_rng(42).normal(size=32)
    golden = fft_radix2(signal)
    golden_parts = np.concatenate([golden.real, golden.imag])

    cpu_out = approximate_fft(signal, float_net.output)
    db_out = approximate_fft(signal, quantized.output)

    cpu_acc = relative_accuracy(
        np.concatenate([cpu_out.real, cpu_out.imag]), golden_parts)
    db_acc = relative_accuracy(
        np.concatenate([db_out.real, db_out.imag]), golden_parts)

    print(f"FFT of a 32-sample signal, Eq. (1) accuracy vs exact:")
    print(f"  software NN (CPU, float64):        {cpu_acc:6.2f}%")
    print(f"  DeepBurning accelerator (fixed):   {db_acc:6.2f}%")
    print(f"  variation:                         {abs(cpu_acc - db_acc):6.2f}%")
    print()
    print("first four spectrum bins (exact / CPU NN / accelerator):")
    for k in range(4):
        print(f"  bin {k}: {golden[k]:.3f}  {cpu_out[k]:.3f}  {db_out[k]:.3f}")


if __name__ == "__main__":
    main()
