"""TSP with a Hopfield accelerator (the paper's Hopfield benchmark).

A Hopfield-Tank network's recurrent weights encode a travelling-salesman
instance; the network relaxes to a low-energy state that decodes into a
tour.  The paper runs this as a 2-layer recurrent model on the generated
accelerator — here we solve an instance three ways and compare tours:

* the orthodox nearest-neighbour heuristic (golden comparator),
* the float Hopfield-Tank dynamics ("NN on CPU"),
* the fixed-point dynamics with quantized weights and the Approx-LUT
  sigmoid (what the accelerator computes).

Run: ``python examples/tsp_solver.py``
"""

import numpy as np

from repro.compiler.lut import build_lut
from repro.fixedpoint.calibrate import calibrate_format
from repro.fixedpoint.ops import dequantize, quantize_to_ints
from repro.nn.hopfield import (
    HopfieldTSPSolver,
    TSPInstance,
    nearest_neighbour_tour,
)


def solve_fixed_point(solver: HopfieldTSPSolver, steps: int = 2000,
                      seed: int = 0):
    """The accelerator's view: 16-bit weights, LUT sigmoid."""
    weight_format = calibrate_format(solver.weights, total_bits=16,
                                     headroom=1.2)
    quantized_weights = dequantize(
        quantize_to_ints(solver.weights, weight_format), weight_format)
    lut = build_lut("sigmoid", -8, 8, entries=256)
    size = solver.n * solver.n
    rng = np.random.default_rng(seed)
    potential = rng.normal(0.0, 0.01, size)
    for _ in range(steps):
        activity = lut.evaluate(np.clip(solver.gain * potential, -8, 8))
        gradient = quantized_weights @ activity + solver.biases
        potential += 1e-5 * (gradient - potential)
    activity = lut.evaluate(np.clip(solver.gain * potential, -8, 8))
    return solver.decode(activity), weight_format


def main() -> None:
    instance = TSPInstance.random(6, seed=11)
    print(f"TSP instance: {instance.n_cities} cities")

    greedy = nearest_neighbour_tour(instance)
    greedy_length = instance.tour_length(greedy)
    print(f"  nearest-neighbour tour: {greedy}  length {greedy_length:.3f}")

    solver = HopfieldTSPSolver(instance)
    float_tour, _ = solver.solve(steps=2000, seed=3)
    float_length = instance.tour_length(float_tour)
    print(f"  Hopfield (float):       {float_tour}  length {float_length:.3f}")

    fixed_tour, weight_format = solve_fixed_point(solver, seed=3)
    fixed_length = instance.tour_length(fixed_tour)
    print(f"  Hopfield (fixed-point): {fixed_tour}  length {fixed_length:.3f}"
          f"  (weights in {weight_format})")

    print(f"\ntour quality vs nearest-neighbour: "
          f"float {float_length / greedy_length:.3f}, "
          f"fixed-point {fixed_length / greedy_length:.3f} "
          "(1.0 = equal)")


if __name__ == "__main__":
    main()
